// Package campaign drives fault-injection campaigns over NPB scenarios: the
// distributed/parallel phase-3 execution of the paper (§3.2.4), with faults
// batched into jobs that run on a host worker pool (standing in for the
// 5000-core HPC cluster), and phase-4 report assembly into a results
// database.
//
// The public orchestration API has three pillars. The Engine (engine.go)
// is a constructed, reusable orchestrator: New(opts...) fixes the tuning,
// RunMatrix(ctx, jobs) interleaves golden runs, checkpoint fast-forwards
// and injection jobs across scenarios on one shared worker pool, cancels
// promptly at job granularity and returns partial results plus ctx.Err().
// Progress is a typed event stream (events.go) consumed live by CLIs or
// folded into summaries by a Collector. Completed campaigns land in a
// Store (store.go) — a queryable results database whose pre-loaded keys
// double as the resume set; the JSONL file is the first backend. The flat
// entry points (Run, RunAll, RunMatrix(MatrixSpec), ReadDB/LoadDB/SaveDB)
// predate the Engine and remain as thin shims over it.
package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"serfi/internal/fault"
	"serfi/internal/fi"
	"serfi/internal/npb"
	"serfi/internal/profile"
	"serfi/internal/prop"
)

// Spec describes one scenario campaign.
type Spec struct {
	Scenario npb.Scenario
	// Domain selects the fault model (zero value: the paper's register
	// single-bit-upset domain).
	Domain fault.Model
	Faults int
	Seed   int64
	// JobSize groups faults into jobs (the paper batches simulations per
	// HPC job to amortize scheduling); 0 picks a sensible default.
	JobSize int
	// Workers bounds parallel jobs; 0 = GOMAXPROCS.
	Workers int
	// Snapshots is the checkpoint count for snapshot-accelerated injection:
	// 0 picks fi.DefaultCheckpoints, negative runs every fault from reset.
	// Outcome counts are bit-identical in both modes.
	Snapshots int
	// SamplePeriod for the golden profiling run.
	SamplePeriod uint64
}

// Result is the scenario-level record: outcome distribution + golden
// profile features, i.e. one row of the paper's cross-layer database.
type Result struct {
	Scenario npb.Scenario
	Domain   fault.Model // fault model the runs were drawn from
	Faults   int
	Seed     int64 // fault-list seed the runs were drawn from
	Counts   fi.Counts
	Golden   GoldenSummary
	Features profile.Features
	APICalls uint64 // calls into the parallelization runtime
	Runs     []fi.Result
	// Traces are per-run propagation records when the campaign ran with
	// propagation tracing: Traces[i] belongs to Runs[i], nil for masked or
	// untraced runs. Nil entirely when tracing was off. Results reloaded
	// from a v2/v3 database carry neither Runs nor Traces (only the Prop
	// fold is stored); v4 rows (RecordRuns) reload Runs exactly and Traces
	// as minimal escape/latency records (Escape + ArchInstr, every other
	// latency axis -1).
	Traces []*prop.Trace
	// Prop is the campaign-level fold of Traces (escape-class histogram and
	// latency samples); nil when no run was traced.
	Prop *prop.Summary
	// RecordRuns marks a campaign whose per-fault rows persist in the
	// database (v4 records): the fault.Point tuple and outcome of every
	// run, plus escape class and divergence latency for traced runs. Off
	// by default — untouched campaigns keep writing v2/v3 rows byte for
	// byte.
	RecordRuns bool
	// Host wall-clock costs (the paper's Table 1 simulation-time axis).
	// Campaigns overlap on the shared worker pool, so GoldenWallSec and
	// CampaignWallSec measure start-to-finish spans, not exclusive
	// compute: summing CampaignWallSec across rows overcounts, sometimes
	// wildly — use ExclusiveCompute for anything additive. Domain
	// campaigns of one scenario share the fault-free phases — their
	// GoldenWallSec is the same measurement and their CampaignWallSec
	// spans open from the shared scenario start. JobWallSec sums the
	// per-job spans emitted as JobDone events: each injection job runs on
	// one worker, so these spans nest within worker occupancy and stay
	// additive across campaigns.
	GoldenWallSec   float64
	CampaignWallSec float64
	JobWallSec      float64
	// JobSpans are the per-job spans behind JobWallSec, tagged with the
	// fault-index range each job covered. ExclusiveCompute merges them by
	// range so that duplicated work — a re-issued distributed shard, a
	// job re-executed across a cancel/resume — is counted once. Sorted by
	// (Lo, Hi); empty on results reloaded from a database.
	JobSpans []JobSpan
	// Snapshot-engine observability: instructions actually simulated by the
	// injection runs versus their from-reset cost, and how many runs were
	// scored by convergence pruning (zero-valued when snapshots are off).
	SimulatedInstr uint64
	FromResetInstr uint64
	PrunedRuns     int
}

// Key is the database identity of one (scenario, fault domain) campaign.
// Register-domain keys are the bare scenario ID so that databases written
// before the domain axis existed keep matching their scenarios.
func Key(sc npb.Scenario, d fault.Model) string {
	if d == fault.Reg {
		return sc.ID()
	}
	return sc.ID() + "#" + d.String()
}

// ParseKey is the inverse of Key.
func ParseKey(key string) (npb.Scenario, fault.Model, error) {
	id, domain := key, fault.Reg
	if i := strings.IndexByte(key, '#'); i >= 0 {
		var err error
		if domain, err = fault.ParseModel(key[i+1:]); err != nil {
			return npb.Scenario{}, 0, err
		}
		id = key[:i]
	}
	sc, err := npb.ParseID(id)
	return sc, domain, err
}

// Key returns the result's database identity.
func (r *Result) Key() string { return Key(r.Scenario, r.Domain) }

// JobSpan is one injection job's host wall-clock span, tagged with the
// fault-index range [Lo, Hi) the job executed.
type JobSpan struct {
	Lo, Hi  int
	WallSec float64
}

// ExclusiveCompute returns the host compute attributable to this campaign
// alone: the golden-phase span plus the merged spans of its injection
// jobs. The merge is by fault-index interval: when two spans overlap —
// the same faults executed twice by a re-issued distributed shard or a
// cancelled-then-resumed matrix — only the first execution's share
// counts, and zero-length spans (the empty shard of a zero-fault
// campaign) count nothing, so summing ExclusiveCompute across campaigns
// approximates total pool busy time without double-counting duplicated
// work. Unlike CampaignWallSec — an open-to-close span over the shared
// worker pool — every counted span occupies one worker. Domain campaigns
// of one scenario share a single golden phase, so a cross-domain sum
// counts that phase once per domain. Results without span records fall
// back to the raw JobWallSec sum; results reloaded from a database store
// no wall-clock columns and report zero.
func (r *Result) ExclusiveCompute() float64 {
	if len(r.JobSpans) == 0 {
		return r.GoldenWallSec + r.JobWallSec
	}
	return r.GoldenWallSec + MergeJobSpans(r.JobSpans)
}

// SortJobSpans orders spans by fault-index range — the Result.JobSpans
// contract, shared by the engine and the distributed coordinator.
func SortJobSpans(spans []JobSpan) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Lo != spans[j].Lo {
			return spans[i].Lo < spans[j].Lo
		}
		return spans[i].Hi < spans[j].Hi
	})
}

// CoverageCount returns how many distinct fault indices a span set covers
// (overlaps counted once) — the unit behind every "injections classified"
// surface. The input need not be sorted and is not modified.
func CoverageCount(spans []JobSpan) int {
	ss := append([]JobSpan(nil), spans...)
	SortJobSpans(ss)
	total, maxHi := 0, 0
	first := true
	for _, s := range ss {
		if s.Hi <= s.Lo {
			continue
		}
		if first || s.Lo > maxHi {
			total += s.Hi - s.Lo
		} else if s.Hi > maxHi {
			total += s.Hi - maxHi
		}
		if first || s.Hi > maxHi {
			maxHi = s.Hi
		}
		first = false
	}
	return total
}

// MergeJobSpans returns the total seconds of a span set with overlapping
// fault-index ranges counted once: each span contributes the fraction of
// its range not already covered by an earlier span. The input need not be
// sorted and is not modified.
func MergeJobSpans(spans []JobSpan) float64 {
	ss := append([]JobSpan(nil), spans...)
	SortJobSpans(ss)
	total := 0.0
	maxHi := 0
	for _, s := range ss {
		if s.Hi <= s.Lo {
			continue // zero-length span: no compute to attribute
		}
		// Sorted by Lo, so coverage at or above s.Lo is exactly [s.Lo, maxHi).
		uncovered := 0
		switch {
		case maxHi <= s.Lo:
			uncovered = s.Hi - s.Lo
		case maxHi < s.Hi:
			uncovered = s.Hi - maxHi
		}
		total += s.WallSec * float64(uncovered) / float64(s.Hi-s.Lo)
		if s.Hi > maxHi {
			maxHi = s.Hi
		}
	}
	return total
}

// SnapshotSavings returns the snapshot engine's amortization factor
// (from-reset instructions per simulated instruction) and the
// convergence-prune rate; ok is false when the campaign ran without
// snapshot acceleration (or was reloaded from a database, which stores no
// engine telemetry).
func (r *Result) SnapshotSavings() (save, pruneRate float64, ok bool) {
	if r.SimulatedInstr == 0 || r.FromResetInstr == 0 {
		return 0, 0, false
	}
	runs := r.Faults
	if runs < 1 {
		runs = 1
	}
	return float64(r.FromResetInstr) / float64(r.SimulatedInstr),
		float64(r.PrunedRuns) / float64(runs), true
}

// GoldenSummary carries the reference-run headline numbers.
type GoldenSummary struct {
	AppStart uint64
	AppEnd   uint64
	Retired  uint64
	Cycles   uint64
}

// Run executes all four workflow phases for one scenario on the shared
// matrix scheduler.
func Run(spec Spec) (*Result, error) {
	results, err := RunMatrix(MatrixSpec{
		Jobs:         []ScenarioJob{{Scenario: spec.Scenario, Domain: spec.Domain, Seed: spec.Seed}},
		Faults:       spec.Faults,
		Workers:      spec.Workers,
		JobSize:      spec.JobSize,
		Snapshots:    spec.Snapshots,
		SamplePeriod: spec.SamplePeriod,
	})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// RunAll executes campaigns for several scenarios on the shared scheduler,
// interleaving golden runs and injection jobs across scenarios. Scenario i
// draws its fault list from seed+i, matching the historical sequential
// behavior; results come back in input order.
func RunAll(scs []npb.Scenario, faults int, seed int64, progress func(*Result)) ([]*Result, error) {
	jobs := make([]ScenarioJob, len(scs))
	for i, sc := range scs {
		jobs[i] = ScenarioJob{Scenario: sc, Seed: seed + int64(i)}
	}
	return RunMatrix(MatrixSpec{Jobs: jobs, Faults: faults, Progress: progress})
}

// recordVersion is the current database row format. Rows written before
// the fault-domain axis carry no "v" field and parse as the implicit
// version 1: a register-domain campaign. recordVersionProp marks rows that
// additionally carry a propagation-trace fold; campaigns without tracing
// keep writing v2 rows, so existing databases and byte-diff suites see no
// change unless -trace-prop is on.
const (
	recordVersion     = 2
	recordVersionProp = 3
	recordVersionRuns = 4
)

// Version returns the database row version this result would be written
// as: v4 when per-run records are kept (RecordRuns), v3 when a propagation
// fold is attached, v2 otherwise. Store predicates (Query.MinVersion)
// select on this.
func (r *Result) Version() int {
	switch {
	case r.RecordRuns:
		return recordVersionRuns
	case r.Prop != nil:
		return recordVersionProp
	default:
		return recordVersion
	}
}

// record is the JSON row stored in the database file.
type record struct {
	Version  int                `json:"v,omitempty"` // 0 = legacy register row
	Scenario string             `json:"scenario"`
	Domain   string             `json:"domain,omitempty"`
	Faults   int                `json:"faults"`
	Seed     int64              `json:"seed"`
	Counts   map[string]int     `json:"counts"`
	Golden   GoldenSummary      `json:"golden"`
	Features map[string]float64 `json:"features"`
	APICalls uint64             `json:"api_calls"`
	Prop     *prop.Summary      `json:"prop,omitempty"` // v3+ rows, traced campaigns only
	Runs     []runRow           `json:"runs,omitempty"` // v4 rows only
}

// runRow is one compact per-fault row of a v4 record: the fault.Point
// tuple, the outcome code, and the escape class + first-divergence latency
// when the run was traced. The point's Domain is omitted — it always
// equals the record's domain column (fault.Domain.Sample stamps it) — and
// the keys are single letters because a campaign writes one row per fault.
type runRow struct {
	I  uint64 `json:"i"`            // fault.Point.Index (retired instrs past AppStart)
	C  int    `json:"c,omitempty"`  // Core
	R  int    `json:"r,omitempty"`  // Reg (register index; cache way)
	A  uint32 `json:"a,omitempty"`  // Addr (byte address; cache set)
	B  int    `json:"b,omitempty"`  // Bit
	W  int    `json:"w,omitempty"`  // Width (burst length)
	L  int    `json:"l,omitempty"`  // Level (cache level)
	O  int    `json:"o"`            // fi.Outcome code
	E  string `json:"e,omitempty"`  // escape class name, traced runs only
	EI *int64 `json:"ei,omitempty"` // instrs to first arch divergence, traced runs only (-1 = never)
}

// recordOf flattens a scenario result into its database row.
func recordOf(r *Result) record {
	rec := record{
		Version:  r.Version(),
		Prop:     r.Prop,
		Scenario: r.Scenario.ID(),
		Domain:   r.Domain.String(),
		Faults:   r.Faults,
		Seed:     r.Seed,
		Counts: map[string]int{
			"vanished": r.Counts[fi.Vanished],
			"ona":      r.Counts[fi.ONA],
			"omm":      r.Counts[fi.OMM],
			"ut":       r.Counts[fi.UT],
			"hang":     r.Counts[fi.Hang],
		},
		Golden:   r.Golden,
		Features: r.Features.Map(),
		APICalls: r.APICalls,
	}
	if r.RecordRuns {
		rec.Runs = make([]runRow, len(r.Runs))
		for i, run := range r.Runs {
			p := run.Fault
			row := runRow{I: p.Index, C: p.Core, R: p.Reg, A: p.Addr,
				B: p.Bit, W: p.Width, L: p.Level, O: int(run.Outcome)}
			if i < len(r.Traces) && r.Traces[i] != nil {
				row.E = r.Traces[i].Escape.String()
				ei := r.Traces[i].ArchInstr
				row.EI = &ei
			}
			rec.Runs[i] = row
		}
	}
	return rec
}

// restoreRuns inflates a v4 record's compact rows back into fi.Result
// records, plus minimal prop.Trace records (escape class and
// arch-divergence latency; every unstored latency axis -1) for the rows
// that were traced. Only the persisted columns are recovered — host-side
// run telemetry (retired/cycles/exit) reads zero on reloaded runs. The
// point's Domain is the campaign's domain column (the register domain is
// the zero value, matching RegDomain.Sample).
func restoreRuns(res *Result, rows []runRow, domain fault.Model) error {
	res.RecordRuns = true
	res.Runs = make([]fi.Result, len(rows))
	for i, row := range rows {
		if row.O < 0 || row.O >= int(fi.NumOutcomes) {
			return fmt.Errorf("run %d: unknown outcome code %d", i, row.O)
		}
		res.Runs[i] = fi.Result{
			Fault: fault.Point{Domain: domain, Index: row.I, Core: row.C,
				Reg: row.R, Addr: row.A, Bit: row.B, Width: row.W, Level: row.L},
			Outcome: fi.Outcome(row.O),
		}
		if row.E == "" {
			continue
		}
		class, err := prop.ParseClass(row.E)
		if err != nil {
			return fmt.Errorf("run %d: %w", i, err)
		}
		tr := &prop.Trace{Escape: class, ArchInstr: -1, ArchCyc: -1,
			TimingInstr: -1, MemInstr: -1, XCoreInstr: -1, KernelInstr: -1}
		if row.EI != nil {
			tr.ArchInstr = *row.EI
		}
		if res.Traces == nil {
			res.Traces = make([]*prop.Trace, len(rows))
		}
		res.Traces[i] = tr
	}
	return nil
}

// writeRecord appends one scenario's JSONL row (the streaming-write path of
// the matrix scheduler).
func writeRecord(w io.Writer, r *Result) error {
	rec := recordOf(r)
	return json.NewEncoder(w).Encode(&rec)
}

// WriteDB streams scenario records as JSON lines (the single database of
// workflow phase 4).
func WriteDB(w io.Writer, results []*Result) error {
	for _, r := range results {
		if err := writeRecord(w, r); err != nil {
			return err
		}
	}
	return nil
}

// SaveDB writes the database to a file path.
func SaveDB(path string, results []*Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteDB(f, results)
}

// ReadDB parses a JSONL database back into per-campaign results, keyed by
// Key (scenario ID, domain-qualified for non-register domains). Legacy rows
// without a version field are accepted as register-domain campaigns;
// unknown record versions and duplicate keys are rejected with a clear
// error rather than silently last-write-wins. Counts, golden summary and
// features round-trip on every version. v2/v3 rows store no per-run
// records, so Runs is empty on their reloaded results; v4 rows (written
// under RecordRuns) reload Runs exactly — fault tuple and outcome per run
// — plus minimal Traces (escape class and arch-divergence latency) for
// runs that were traced, and re-writing such a result reproduces its row
// byte for byte.
func ReadDB(r io.Reader) (map[string]*Result, error) {
	out := make(map[string]*Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		res, err := decodeRecordLine(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("campaign db line %d: %w", line, err)
		}
		key := res.Key()
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("campaign db line %d: duplicate record for %q", line, key)
		}
		out[key] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// decodeRecordLine parses one JSONL database row into a Result — the
// single-row slice of ReadDB, shared with the segmented store's lazy row
// loads (which read individual rows by segment offset instead of scanning
// the whole database).
func decodeRecordLine(b []byte) (*Result, error) {
	var rec record
	if err := json.Unmarshal(b, &rec); err != nil {
		return nil, err
	}
	scen, err := npb.ParseID(rec.Scenario)
	if err != nil {
		return nil, err
	}
	var domain fault.Model
	switch rec.Version {
	case 0:
		// Legacy pre-domain row: implicitly a register campaign.
		if rec.Domain != "" {
			return nil, fmt.Errorf("unversioned row carries domain %q (corrupt or hand-edited)", rec.Domain)
		}
	case recordVersion, recordVersionProp, recordVersionRuns:
		if domain, err = fault.ParseModel(rec.Domain); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown record version %d (this build reads legacy rows, v%d, v%d and v%d)",
			rec.Version, recordVersion, recordVersionProp, recordVersionRuns)
	}
	res := &Result{
		Scenario: scen,
		Domain:   domain,
		Faults:   rec.Faults,
		Seed:     rec.Seed,
		Golden:   rec.Golden,
		Features: profile.FeaturesFromMap(rec.Features),
		APICalls: rec.APICalls,
		Prop:     rec.Prop,
	}
	if rec.Version == recordVersionRuns {
		if err := restoreRuns(res, rec.Runs, domain); err != nil {
			return nil, err
		}
	}
	res.Counts[fi.Vanished] = rec.Counts["vanished"]
	res.Counts[fi.ONA] = rec.Counts["ona"]
	res.Counts[fi.OMM] = rec.Counts["omm"]
	res.Counts[fi.UT] = rec.Counts["ut"]
	res.Counts[fi.Hang] = rec.Counts["hang"]
	return res, nil
}

// LoadDB reads a database file for -resume; a missing file is not an error
// and yields an empty map.
func LoadDB(path string) (map[string]*Result, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[string]*Result{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDB(f)
}
