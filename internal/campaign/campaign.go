// Package campaign drives fault-injection campaigns over NPB scenarios: the
// distributed/parallel phase-3 execution of the paper (§3.2.4), with faults
// batched into jobs that run on a host worker pool (standing in for the
// 5000-core HPC cluster), and phase-4 report assembly into a results
// database.
package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"serfi/internal/fi"
	"serfi/internal/npb"
	"serfi/internal/profile"
)

// Spec describes one scenario campaign.
type Spec struct {
	Scenario npb.Scenario
	Faults   int
	Seed     int64
	// JobSize groups faults into jobs (the paper batches simulations per
	// HPC job to amortize scheduling); 0 picks a sensible default.
	JobSize int
	// Workers bounds parallel jobs; 0 = GOMAXPROCS.
	Workers int
	// SamplePeriod for the golden profiling run.
	SamplePeriod uint64
}

// Result is the scenario-level record: outcome distribution + golden
// profile features, i.e. one row of the paper's cross-layer database.
type Result struct {
	Scenario npb.Scenario
	Faults   int
	Counts   fi.Counts
	Golden   GoldenSummary
	Features profile.Features
	APICalls uint64 // calls into the parallelization runtime
	Runs     []fi.Result
	// Host wall-clock costs (the paper's Table 1 simulation-time axis).
	GoldenWallSec   float64
	CampaignWallSec float64
}

// GoldenSummary carries the reference-run headline numbers.
type GoldenSummary struct {
	AppStart uint64
	AppEnd   uint64
	Retired  uint64
	Cycles   uint64
}

// Run executes all four workflow phases for one scenario.
func Run(spec Spec) (*Result, error) {
	img, cfg, err := npb.BuildScenario(spec.Scenario)
	if err != nil {
		return nil, err
	}
	// Phase 1: golden execution, with profiling enabled.
	gcfg := cfg
	gcfg.Profile = true
	gcfg.SamplePeriod = spec.SamplePeriod
	if gcfg.SamplePeriod == 0 {
		gcfg.SamplePeriod = 97
	}
	t0 := time.Now()
	g, err := fi.RunGolden(img, gcfg, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Scenario.ID(), err)
	}
	goldenWall := time.Since(t0).Seconds()
	feat := cfg.ISA.Feat()

	// Phase 2: fault list.
	faults := fi.FaultList(spec.Seed, spec.Faults, g, feat, cfg.Cores)

	// Phase 3: batched parallel injection runs.
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobSize := spec.JobSize
	if jobSize <= 0 {
		jobSize = 8
	}
	type job struct{ lo, hi int }
	jobs := make(chan job)
	results := make([]fi.Result, len(faults))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				for i := j.lo; i < j.hi; i++ {
					results[i] = fi.Inject(img, cfg, g, faults[i])
				}
			}
		}()
	}
	for lo := 0; lo < len(faults); lo += jobSize {
		hi := lo + jobSize
		if hi > len(faults) {
			hi = len(faults)
		}
		jobs <- job{lo, hi}
	}
	close(jobs)
	wg.Wait()

	// Phase 4: assemble the report.
	res := &Result{
		GoldenWallSec:   goldenWall,
		CampaignWallSec: time.Since(t0).Seconds(),
		Scenario:        spec.Scenario,
		Faults:          spec.Faults,
		Golden: GoldenSummary{
			AppStart: g.AppStart,
			AppEnd:   g.AppEnd,
			Retired:  g.Retired,
			Cycles:   g.Cycles,
		},
		Features: profile.Extract(img, g.Machine),
		Runs:     results,
	}
	p := profile.Build(img, g.Machine)
	res.APICalls = p.CallsTo(profile.RuntimePrefixes...)
	for _, r := range results {
		res.Counts.Add(r.Outcome)
	}
	return res, nil
}

// RunAll executes campaigns for several scenarios sequentially (each one
// already saturates the worker pool internally).
func RunAll(scs []npb.Scenario, faults int, seed int64, progress func(*Result)) ([]*Result, error) {
	var out []*Result
	for i, sc := range scs {
		r, err := Run(Spec{Scenario: sc, Faults: faults, Seed: seed + int64(i)})
		if err != nil {
			return out, err
		}
		out = append(out, r)
		if progress != nil {
			progress(r)
		}
	}
	return out, nil
}

// record is the JSON row stored in the database file.
type record struct {
	Scenario string             `json:"scenario"`
	Faults   int                `json:"faults"`
	Counts   map[string]int     `json:"counts"`
	Golden   GoldenSummary      `json:"golden"`
	Features map[string]float64 `json:"features"`
	APICalls uint64             `json:"api_calls"`
}

// WriteDB streams scenario records as JSON lines (the single database of
// workflow phase 4).
func WriteDB(w io.Writer, results []*Result) error {
	enc := json.NewEncoder(w)
	for _, r := range results {
		rec := record{
			Scenario: r.Scenario.ID(),
			Faults:   r.Faults,
			Counts: map[string]int{
				"vanished": r.Counts[fi.Vanished],
				"ona":      r.Counts[fi.ONA],
				"omm":      r.Counts[fi.OMM],
				"ut":       r.Counts[fi.UT],
				"hang":     r.Counts[fi.Hang],
			},
			Golden:   r.Golden,
			Features: r.Features.Map(),
			APICalls: r.APICalls,
		}
		if err := enc.Encode(&rec); err != nil {
			return err
		}
	}
	return nil
}

// SaveDB writes the database to a file path.
func SaveDB(path string, results []*Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteDB(f, results)
}
