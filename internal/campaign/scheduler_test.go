package campaign_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"serfi/internal/campaign"
	"serfi/internal/npb"
)

func matrixJobs() []campaign.ScenarioJob {
	return []campaign.ScenarioJob{
		{Scenario: npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1}, Seed: 41},
		{Scenario: npb.Scenario{App: "EP", Mode: npb.OMP, ISA: "armv8", Cores: 2}, Seed: 42},
	}
}

// TestMatrixDeterministicAcrossModes is the PR's acceptance property: the
// scheduler yields identical per-fault results whatever the worker count,
// job size or snapshot mode.
func TestMatrixDeterministicAcrossModes(t *testing.T) {
	run := func(workers, jobSize, snapshots int) []*campaign.Result {
		res, err := campaign.RunMatrix(campaign.MatrixSpec{
			Jobs:      matrixJobs(),
			Faults:    10,
			Workers:   workers,
			JobSize:   jobSize,
			Snapshots: snapshots,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1, 1, -1) // serial, from reset
	for _, alt := range [][3]int{
		{4, 3, -1}, // parallel, from reset
		{1, 1, 5},  // serial, snapshots
		{4, 3, 5},  // parallel, snapshots
	} {
		got := run(alt[0], alt[1], alt[2])
		for i := range ref {
			if ref[i].Counts != got[i].Counts {
				t.Errorf("workers=%d jobsize=%d snapshots=%d: %s counts %v != %v",
					alt[0], alt[1], alt[2], ref[i].Scenario.ID(), got[i].Counts, ref[i].Counts)
			}
			if !reflect.DeepEqual(ref[i].Runs, got[i].Runs) {
				t.Errorf("workers=%d jobsize=%d snapshots=%d: %s per-run records differ",
					alt[0], alt[1], alt[2], ref[i].Scenario.ID())
			}
		}
	}
}

// TestMatrixStreamsAndResumes runs a matrix streaming to a database buffer,
// reloads it, and checks a resumed matrix skips everything it already has.
func TestMatrixStreamsAndResumes(t *testing.T) {
	jobs := matrixJobs()
	var db bytes.Buffer
	first, err := campaign.RunMatrix(campaign.MatrixSpec{
		Jobs: jobs, Faults: 6, DB: &db,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(db.String(), "\n"); got != len(jobs) {
		t.Fatalf("streamed %d records, want %d", got, len(jobs))
	}

	loaded, err := campaign.ReadDB(bytes.NewReader(db.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(jobs) {
		t.Fatalf("reloaded %d records, want %d", len(loaded), len(jobs))
	}
	for _, r := range first {
		l := loaded[r.Scenario.ID()]
		if l == nil {
			t.Fatalf("record %s missing after reload", r.Scenario.ID())
		}
		if l.Counts != r.Counts || l.Golden != r.Golden || l.APICalls != r.APICalls || l.Seed != r.Seed {
			t.Errorf("%s did not round-trip: %+v vs %+v", r.Scenario.ID(), l, r)
		}
	}

	// Resume: everything already in the database, nothing new streams.
	var db2 bytes.Buffer
	resumed, err := campaign.RunMatrix(campaign.MatrixSpec{
		Jobs: jobs, Faults: 6, DB: &db2, Skip: loaded,
		Progress: func(*campaign.Result) { t.Error("progress fired for a skipped scenario") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != 0 {
		t.Errorf("resume re-streamed records: %q", db2.String())
	}
	for i, r := range resumed {
		if r == nil || r.Counts != first[i].Counts {
			t.Errorf("resumed result %d mismatch", i)
		}
	}
}

// TestMatrixReportsScenarioError checks a broken scenario fails the matrix
// without wedging the scheduler, and healthy scenarios still finish.
func TestMatrixReportsScenarioError(t *testing.T) {
	jobs := []campaign.ScenarioJob{
		{Scenario: npb.Scenario{App: "NOPE", Mode: npb.Serial, ISA: "armv8", Cores: 1}, Seed: 1},
		{Scenario: npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1}, Seed: 2},
	}
	res, err := campaign.RunMatrix(campaign.MatrixSpec{Jobs: jobs, Faults: 2})
	if err == nil || !strings.Contains(err.Error(), "NOPE") {
		t.Fatalf("err = %v, want unknown-app failure", err)
	}
	if res[1] == nil || res[1].Counts.Total() != 2 {
		t.Error("healthy scenario did not complete alongside the failure")
	}
}
