// The queryable results database of campaign orchestration. A Store is
// where Engine runs land and where resume, report generation and ad-hoc
// analysis read from — the phase-4 cross-layer database of the paper as an
// interface instead of a raw map[string]*Result. The JSONL file that
// campaigns have always streamed to is the first backend (FileStore);
// MemStore serves tests and in-process pipelines, and StreamStore adapts
// the legacy MatrixSpec.DB/Skip pair.
package campaign

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"serfi/internal/fault"
	"serfi/internal/npb"
)

// Store is a campaign results database keyed by Key (scenario ID,
// domain-qualified for non-register domains). Put is a streaming append:
// Engine calls it once per freshly completed campaign, in completion
// order, so an interrupted run leaves every completed campaign durable.
// Implementations must be safe for concurrent use.
type Store interface {
	// Put appends one campaign record. A key already present is rejected
	// with an error (campaign identities are immutable; resume skips them
	// instead of rewriting them).
	Put(*Result) error
	// Get returns the campaign stored under key.
	Get(key string) (*Result, bool)
	// Keys returns every stored campaign key in sorted order.
	Keys() []string
	// Query returns the campaigns matching q in sorted key order.
	Query(Query) []*Result
}

// TenantStore is a Store that can partition its keyspace into named tenant
// namespaces. Tenant returns a Store view scoped to one namespace: keys,
// rows and duplicate detection are isolated per namespace, while the record
// row format stays exactly the canonical JSONL — tenancy lives in store
// organization, never in row content, so a tenant's rows remain
// byte-identical to a single-tenant run. Tenant("") returns the default
// (unscoped) view. Views of the same namespace alias the same data.
type TenantStore interface {
	Store
	Tenant(ns string) Store
}

// TenantView resolves a tenant-scoped view of st. The empty namespace is
// the store itself (every backend supports it); a named namespace needs a
// TenantStore backend and errors otherwise, so a multi-tenant queue over a
// flat legacy store fails loudly instead of mixing tenants' keys.
func TenantView(st Store, ns string) (Store, error) {
	if ns == "" || st == nil {
		return st, nil
	}
	ts, ok := st.(TenantStore)
	if !ok {
		return nil, fmt.Errorf("campaign store: backend %T cannot scope tenant %q (need a TenantStore, e.g. OpenSegmentedStore)", st, ns)
	}
	return ts.Tenant(ns), nil
}

// Query selects campaigns by conjunctive predicates. Each field constrains
// one axis when non-empty and matches everything when empty, so the zero
// Query selects the whole store.
type Query struct {
	Apps    []string      // benchmark names ("IS", "MG", ...)
	ISAs    []string      // "armv7" / "armv8"
	Modes   []npb.Mode    // programming models
	Cores   []int         // core counts
	Domains []fault.Model // fault domains
	// MinVersion selects campaigns whose database row version
	// (Result.Version) is at least this value; 0 matches everything.
	MinVersion int
	// HasProp selects campaigns carrying a propagation fold (traced
	// campaigns, v3+).
	HasProp bool
	// HasRuns selects campaigns whose per-run records are available —
	// live results, or results reloaded from v4 rows. This is the
	// predicate the sensitivity layer uses to find analyzable rows
	// without a full scan.
	HasRuns bool
	// Match, when set, is an arbitrary extra predicate ANDed with the
	// field constraints.
	Match func(npb.Scenario, fault.Model) bool
}

// Matches reports whether one (scenario, domain) campaign satisfies q's
// identity constraints. The content predicates (MinVersion, HasProp,
// HasRuns) need the full record — MatchesResult checks those too.
func (q Query) Matches(sc npb.Scenario, d fault.Model) bool {
	if len(q.Apps) > 0 && !contains(q.Apps, sc.App) {
		return false
	}
	if len(q.ISAs) > 0 && !contains(q.ISAs, sc.ISA) {
		return false
	}
	if len(q.Modes) > 0 && !contains(q.Modes, sc.Mode) {
		return false
	}
	if len(q.Cores) > 0 && !contains(q.Cores, sc.Cores) {
		return false
	}
	if len(q.Domains) > 0 && !contains(q.Domains, d) {
		return false
	}
	return q.Match == nil || q.Match(sc, d)
}

// MatchesResult reports whether a stored campaign satisfies the whole
// query: the identity constraints of Matches plus the content predicates.
func (q Query) MatchesResult(r *Result) bool {
	if !q.Matches(r.Scenario, r.Domain) {
		return false
	}
	if q.MinVersion > 0 && r.Version() < q.MinVersion {
		return false
	}
	if q.HasProp && r.Prop == nil {
		return false
	}
	if q.HasRuns && len(r.Runs) == 0 {
		return false
	}
	return true
}

func contains[T comparable](xs []T, x T) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// ValidateResume checks that every job already recorded in st was drawn
// with the same fault count and fault-list seed the current run would
// use. Resuming across a changed fault count would silently mix sample
// sizes in one database (rate comparisons over unequal n), and a changed
// base seed would make the matrix irreproducible from any single seed —
// both are refused up front instead.
func ValidateResume(st Store, jobs []ScenarioJob, faults int) error {
	for _, job := range jobs {
		r, ok := st.Get(job.Key())
		if !ok {
			continue
		}
		if r.Faults != faults {
			return fmt.Errorf("%s has %d faults recorded, current run uses %d (match the fault count or start a fresh database)",
				job.Key(), r.Faults, faults)
		}
		if r.Seed != job.Seed {
			return fmt.Errorf("%s was drawn with seed %d, current run uses seed %d (match the base seed or start a fresh database)",
				job.Key(), r.Seed, job.Seed)
		}
	}
	return nil
}

// memIndex is the shared in-memory map behind every Store implementation.
type memIndex struct {
	mu sync.RWMutex
	m  map[string]*Result
}

func (s *memIndex) put(r *Result) error {
	key := r.Key()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]*Result)
	}
	if _, dup := s.m[key]; dup {
		return fmt.Errorf("campaign store: duplicate record for %q", key)
	}
	s.m[key] = r
	return nil
}

func (s *memIndex) Get(key string) (*Result, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.m[key]
	return r, ok
}

func (s *memIndex) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (s *memIndex) Query(q Query) []*Result {
	var out []*Result
	for _, k := range s.Keys() {
		r, _ := s.Get(k)
		if r != nil && q.MatchesResult(r) {
			out = append(out, r)
		}
	}
	return out
}

// MemStore is the in-memory Store: tests, examples and in-process
// pipelines that never touch disk. It is also a TenantStore: Tenant(ns)
// returns an isolated per-namespace sub-store, the in-memory analogue of
// the segmented store's per-tenant segment sets.
type MemStore struct {
	memIndex

	tmu     sync.Mutex
	tenants map[string]*MemStore
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Put appends one campaign record, rejecting duplicate keys.
func (s *MemStore) Put(r *Result) error { return s.put(r) }

// Tenant returns the namespace-scoped view: an isolated sub-store sharing
// nothing with other namespaces. The empty namespace is the store itself.
func (s *MemStore) Tenant(ns string) Store {
	if ns == "" {
		return s
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if s.tenants == nil {
		s.tenants = make(map[string]*MemStore)
	}
	t := s.tenants[ns]
	if t == nil {
		t = NewMemStore()
		s.tenants[ns] = t
	}
	return t
}

// FileStore is the JSONL-file Store: existing rows load at open (so an
// Engine run over the same store resumes where the interrupted one
// stopped), and every Put appends one JSONL row immediately — the
// streaming write that makes mid-matrix interruption safe. Keys (like
// every Store) returns sorted order, so status output and record diffs are
// stable across runs and across backends.
type FileStore struct {
	memIndex
	path  string
	fsync bool

	wmu sync.Mutex
	f   *os.File
}

// FileStoreOption configures OpenFileStore.
type FileStoreOption func(*FileStore)

// Fsync makes every Put fsync the file before returning. With it, a
// campaign acknowledged to the caller — and, in the distributed fabric, a
// shard acknowledged to a worker via its assembled campaign — survives a
// coordinator host crash, not merely a process exit; without it the write
// sits in the page cache at the OS's mercy. Costs one disk flush per
// campaign record, which campaign-scale streams never notice.
func Fsync() FileStoreOption { return func(s *FileStore) { s.fsync = true } }

// OpenFileStore opens (or creates) the JSONL database at path. Existing
// rows are loaded and served by Get/Keys/Query; subsequent Puts append.
// A missing file is an empty store, matching LoadDB's resume convention.
func OpenFileStore(path string, opts ...FileStoreOption) (*FileStore, error) {
	loaded, err := LoadDB(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s := &FileStore{memIndex: memIndex{m: loaded}, path: path, f: f}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// Path returns the database file path.
func (s *FileStore) Path() string { return s.path }

// Put appends one campaign record to the file and the in-memory index,
// fsyncing when the store was opened with Fsync.
func (s *FileStore) Put(r *Result) error {
	if err := s.put(r); err != nil {
		return err
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	err := writeRecord(s.f, r)
	if err == nil && s.fsync {
		err = s.f.Sync()
	}
	if err != nil {
		// Roll the index back so the store stays consistent with the file.
		s.mu.Lock()
		delete(s.m, r.Key())
		s.mu.Unlock()
		return fmt.Errorf("campaign store %s: %w", s.path, err)
	}
	return nil
}

// Sync flushes the backing file to stable storage without closing it —
// the graceful-shutdown barrier: a store synced before the process prints
// its resume hint cannot advertise campaigns a crash would lose.
func (s *FileStore) Sync() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.f.Sync()
}

// Close flushes and closes the backing file. The in-memory index stays
// readable; further Puts fail.
func (s *FileStore) Close() error { return s.f.Close() }

// streamStore adapts the legacy MatrixSpec trio — a raw JSONL writer, a
// pre-loaded skip map and a serialized progress callback — to the Store
// interface, so the deprecated entry points run on the Engine unchanged.
type streamStore struct {
	memIndex
	w        io.Writer
	skip     map[string]*Result
	progress func(*Result)
}

// StreamStore wraps a raw JSONL stream plus an optional pre-loaded skip
// set as a Store. Put appends to w (when non-nil); Get consults skip
// first, then fresh Puts. Callers that own their database file should use
// OpenFileStore instead.
func StreamStore(w io.Writer, skip map[string]*Result) Store {
	return &streamStore{w: w, skip: skip}
}

func (s *streamStore) Put(r *Result) error {
	if err := s.put(r); err != nil {
		return err
	}
	if s.w != nil {
		if err := writeRecord(s.w, r); err != nil {
			s.mu.Lock()
			delete(s.m, r.Key())
			s.mu.Unlock()
			return err
		}
	}
	if s.progress != nil {
		s.progress(r)
	}
	return nil
}

func (s *streamStore) Get(key string) (*Result, bool) {
	if r, ok := s.skip[key]; ok {
		return r, true
	}
	return s.memIndex.Get(key)
}
