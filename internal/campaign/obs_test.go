package campaign_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"serfi/internal/campaign"
	"serfi/internal/npb"
	"serfi/internal/obs"
)

// TestEventOrderingUnderCancellation cancels a matrix mid-flight and checks
// the event-stream contract holds under the abort path: MatrixDone is the
// final event (nothing trails it, nothing is left unconsumed), and no
// campaign emits a JobDone after its own ScenarioDone.
func TestEventOrderingUnderCancellation(t *testing.T) {
	jobs := []campaign.ScenarioJob{
		{Scenario: npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1}, Seed: 61},
		{Scenario: npb.Scenario{App: "EP", Mode: npb.Serial, ISA: "armv8", Cores: 1}, Seed: 62},
		{Scenario: npb.Scenario{App: "IS", Mode: npb.OMP, ISA: "armv8", Cores: 2}, Seed: 63},
	}
	events := make(chan campaign.Event, 256)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// One worker and one open-scenario slot serialize the matrix, so the
	// cancel lands while later campaigns are still pending.
	eng := campaign.New(
		campaign.Faults(8),
		campaign.JobSize(2),
		campaign.Workers(1),
		campaign.MaxOpen(1),
		campaign.WithEvents(events),
	)
	var got []campaign.Event
	consumed := make(chan struct{})
	go func() {
		defer close(consumed)
		for ev := range events {
			got = append(got, ev)
			switch ev.(type) {
			case campaign.ScenarioDone:
				cancel() // abort the rest of the matrix after the first campaign
			case campaign.MatrixDone:
				return
			}
		}
	}()
	_, err := eng.RunMatrix(ctx, jobs)
	<-consumed
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunMatrix err = %v, want context.Canceled", err)
	}
	// Anything still buffered was sent after the terminal MatrixDone.
	close(events)
	for ev := range events {
		t.Errorf("event after MatrixDone: %#v", ev)
	}
	if len(got) == 0 {
		t.Fatal("no events collected")
	}
	if _, ok := got[len(got)-1].(campaign.MatrixDone); !ok {
		t.Errorf("last event = %#v, want MatrixDone", got[len(got)-1])
	}
	doneAt := make(map[string]int)
	for i, ev := range got {
		if sd, ok := ev.(campaign.ScenarioDone); ok {
			doneAt[sd.Key] = i
		}
	}
	if len(doneAt) == 0 {
		t.Fatal("no ScenarioDone before cancellation")
	}
	for i, ev := range got {
		if jd, ok := ev.(campaign.JobDone); ok {
			if at, done := doneAt[jd.Key()]; done && i > at {
				t.Errorf("JobDone for %s at index %d after its ScenarioDone at %d", jd.Key(), i, at)
			}
		}
	}
}

// TestMetricsExposition runs a real small campaign against the process
// registry and checks the text exposition parses structurally and covers
// every instrumented layer: engine, fi, mach and mem families.
func TestMetricsExposition(t *testing.T) {
	sc := npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1}
	eng := campaign.New(
		campaign.Faults(6),
		campaign.JobSize(3),
		campaign.WithMetrics(obs.Default),
	)
	if _, err := eng.RunMatrix(context.Background(), []campaign.ScenarioJob{{Scenario: sc, Seed: 71}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.Default.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	families, err := obs.Lint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not lint: %v\n%s", err, buf.String())
	}
	if families == 0 {
		t.Fatal("empty exposition")
	}
	text := buf.String()
	for _, fam := range []string{
		"# TYPE serfi_campaign_injections_total counter",
		"# TYPE serfi_campaign_jobs_done_total counter",
		"# TYPE serfi_campaign_checkpoint_resident_bytes gauge",
		"# TYPE serfi_fi_injections_total counter",
		"# TYPE serfi_fi_restore_seconds histogram",
		"# TYPE serfi_fi_instructions_per_injection histogram",
		"# TYPE serfi_mach_retired_instructions_total counter",
		"# TYPE serfi_mach_runs_total counter",
		"# TYPE serfi_mem_snapshots_total counter",
		"# TYPE serfi_mem_restores_total counter",
	} {
		if !strings.Contains(text, fam) {
			t.Errorf("exposition missing %q", fam)
		}
	}
	// The campaign classified six faults; the outcome-labelled counters must
	// account for at least that many (obs.Default accumulates across tests,
	// so >= not ==).
	if !strings.Contains(text, `serfi_campaign_injections_total{outcome="`) {
		t.Error("no outcome-labelled injection counters in exposition")
	}
}
