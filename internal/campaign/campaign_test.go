package campaign_test

import (
	"bytes"
	"strings"
	"testing"

	"serfi/internal/campaign"
	"serfi/internal/fault"
	"serfi/internal/fi"
	"serfi/internal/npb"
)

func TestCampaignEndToEnd(t *testing.T) {
	spec := campaign.Spec{
		Scenario: npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1},
		Faults:   16,
		Seed:     99,
	}
	r, err := campaign.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Counts.Total() != 16 {
		t.Fatalf("classified %d of 16", r.Counts.Total())
	}
	if r.Golden.Retired == 0 || r.Golden.AppEnd <= r.Golden.AppStart {
		t.Error("golden summary empty")
	}
	if r.Features.Instructions == 0 || r.Features.BranchPct <= 0 {
		t.Errorf("features empty: %+v", r.Features)
	}
	if len(r.Runs) != 16 {
		t.Errorf("run records = %d", len(r.Runs))
	}
	// Golden compatibility with the pre-domain injector: the same seed
	// must reproduce the campaign recorded before internal/fault existed
	// (captured at PR 1), bit for bit.
	if want := (fi.Counts{7, 7, 0, 2, 0}); r.Counts != want {
		t.Errorf("register campaign drifted from pre-domain golden: %v, want %v", r.Counts, want)
	}
	if f := r.Runs[0].Fault; f.Index != 1173895 || f.Reg != 2 || f.Bit != 10 {
		t.Errorf("fault list drifted from pre-domain golden: first fault %s", f)
	}
	if r.SimulatedInstr == 0 || r.FromResetInstr <= r.SimulatedInstr {
		t.Errorf("snapshot observability empty: simulated %d of %d", r.SimulatedInstr, r.FromResetInstr)
	}
}

// TestRegCampaignGoldenCompatV7 pins the ARMv7 register campaign against
// the outcome distribution captured before the fault-domain subsystem.
func TestRegCampaignGoldenCompatV7(t *testing.T) {
	r, err := campaign.Run(campaign.Spec{
		Scenario: npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv7", Cores: 1},
		Faults:   12,
		Seed:     2018,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := (fi.Counts{9, 0, 1, 2, 0}); r.Counts != want {
		t.Errorf("v7 register campaign drifted from pre-domain golden: %v, want %v", r.Counts, want)
	}
}

func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	sc := npb.Scenario{App: "EP", Mode: npb.Serial, ISA: "armv8", Cores: 1}
	run := func(workers int) fi.Counts {
		r, err := campaign.Run(campaign.Spec{Scenario: sc, Faults: 12, Seed: 5, Workers: workers, JobSize: 3})
		if err != nil {
			t.Fatal(err)
		}
		return r.Counts
	}
	if run(1) != run(2) {
		t.Error("campaign outcome depends on host worker count")
	}
}

func TestCampaignDBFormat(t *testing.T) {
	sc := npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1}
	r, err := campaign.Run(campaign.Spec{Scenario: sc, Faults: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := campaign.WriteDB(&buf, []*campaign.Result{r}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"armv8/IS/SER-1", "vanished", "branch_pct", "api_calls"} {
		if !strings.Contains(s, want) {
			t.Errorf("db missing %q: %s", want, s)
		}
	}
}

// TestMemCampaignDeterministic is the PR's acceptance property for the new
// fault spaces: a mem-domain campaign on IS yields identical per-fault
// results at any worker count with snapshots on or off.
func TestMemCampaignDeterministic(t *testing.T) {
	sc := npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1}
	run := func(workers, snapshots int) *campaign.Result {
		r, err := campaign.Run(campaign.Spec{
			Scenario: sc, Domain: fault.Mem, Faults: 6, Seed: 21,
			Workers: workers, JobSize: 2, Snapshots: snapshots,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ref := run(1, -1) // serial, from reset
	if ref.Counts.Total() != 6 {
		t.Fatalf("classified %d of 6", ref.Counts.Total())
	}
	for _, alt := range [][2]int{{3, -1}, {1, 5}, {3, 5}} {
		got := run(alt[0], alt[1])
		if got.Counts != ref.Counts {
			t.Errorf("workers=%d snapshots=%d: counts %v != %v", alt[0], alt[1], got.Counts, ref.Counts)
		}
		for i := range ref.Runs {
			if got.Runs[i] != ref.Runs[i] {
				t.Errorf("workers=%d snapshots=%d: run %d %+v != %+v",
					alt[0], alt[1], i, got.Runs[i], ref.Runs[i])
			}
		}
	}
	// All six mem faults targeted mapped words: the key and domain are
	// recorded on the result.
	if ref.Key() != "armv8/IS/SER-1#mem" || ref.Domain != fault.Mem {
		t.Errorf("mem campaign key = %q domain = %v", ref.Key(), ref.Domain)
	}
}

func TestOMPCampaignHasAPIExposure(t *testing.T) {
	sc := npb.Scenario{App: "EP", Mode: npb.OMP, ISA: "armv8", Cores: 2}
	r, err := campaign.Run(campaign.Spec{Scenario: sc, Faults: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.APICalls == 0 {
		t.Error("OMP scenario shows no parallelization-API calls")
	}
	ser, err := campaign.Run(campaign.Spec{
		Scenario: npb.Scenario{App: "EP", Mode: npb.Serial, ISA: "armv8", Cores: 1},
		Faults:   2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ser.Features.APIWindow > r.Features.APIWindow {
		t.Errorf("serial API window %.2f%% exceeds OMP %.2f%%",
			ser.Features.APIWindow, r.Features.APIWindow)
	}
}
