package campaign_test

import (
	"bytes"
	"strings"
	"testing"

	"serfi/internal/campaign"
	"serfi/internal/fi"
	"serfi/internal/npb"
)

func TestCampaignEndToEnd(t *testing.T) {
	spec := campaign.Spec{
		Scenario: npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1},
		Faults:   16,
		Seed:     99,
	}
	r, err := campaign.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Counts.Total() != 16 {
		t.Fatalf("classified %d of 16", r.Counts.Total())
	}
	if r.Golden.Retired == 0 || r.Golden.AppEnd <= r.Golden.AppStart {
		t.Error("golden summary empty")
	}
	if r.Features.Instructions == 0 || r.Features.BranchPct <= 0 {
		t.Errorf("features empty: %+v", r.Features)
	}
	if len(r.Runs) != 16 {
		t.Errorf("run records = %d", len(r.Runs))
	}
}

func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	sc := npb.Scenario{App: "EP", Mode: npb.Serial, ISA: "armv8", Cores: 1}
	run := func(workers int) fi.Counts {
		r, err := campaign.Run(campaign.Spec{Scenario: sc, Faults: 12, Seed: 5, Workers: workers, JobSize: 3})
		if err != nil {
			t.Fatal(err)
		}
		return r.Counts
	}
	if run(1) != run(2) {
		t.Error("campaign outcome depends on host worker count")
	}
}

func TestCampaignDBFormat(t *testing.T) {
	sc := npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1}
	r, err := campaign.Run(campaign.Spec{Scenario: sc, Faults: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := campaign.WriteDB(&buf, []*campaign.Result{r}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"armv8/IS/SER-1", "vanished", "branch_pct", "api_calls"} {
		if !strings.Contains(s, want) {
			t.Errorf("db missing %q: %s", want, s)
		}
	}
}

func TestOMPCampaignHasAPIExposure(t *testing.T) {
	sc := npb.Scenario{App: "EP", Mode: npb.OMP, ISA: "armv8", Cores: 2}
	r, err := campaign.Run(campaign.Spec{Scenario: sc, Faults: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.APICalls == 0 {
		t.Error("OMP scenario shows no parallelization-API calls")
	}
	ser, err := campaign.Run(campaign.Spec{
		Scenario: npb.Scenario{App: "EP", Mode: npb.Serial, ISA: "armv8", Cores: 1},
		Faults:   2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ser.Features.APIWindow > r.Features.APIWindow {
		t.Errorf("serial API window %.2f%% exceeds OMP %.2f%%",
			ser.Features.APIWindow, r.Features.APIWindow)
	}
}
