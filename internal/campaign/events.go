// The typed event stream of an Engine run. Every phase transition of every
// campaign is published as one Event value on the engine's Events channel:
// CLIs consume it for live progress, the Collector folds it into summaries,
// and tests assert on the taxonomy directly — replacing the func(*Result) /
// func(string) callback zoo the schedulers grew before the Engine existed.
package campaign

import (
	"fmt"
	"io"
	"sync"
	"time"

	"serfi/internal/fault"
	"serfi/internal/npb"
)

// Event is one typed progress notification from an Engine run. The concrete
// types are ScenarioStarted, GoldenDone, JobDone, ScenarioDone and
// MatrixDone; MatrixDone is always the last event of a run, so a consumer
// may stop after it without waiting for the channel to close.
type Event interface{ event() }

// ScenarioStarted opens one scenario group: the fault-free phases (image
// build, golden run, profiling, checkpoint fast-forward) are about to run
// once for every fault-domain campaign listed in Domains.
type ScenarioStarted struct {
	Scenario npb.Scenario
	Seed     int64
	Domains  []fault.Model
}

// GoldenDone reports the completed fault-free phases of one scenario group:
// the reference-run headline numbers plus the snapshot capture stats.
type GoldenDone struct {
	Scenario npb.Scenario
	Seed     int64
	Golden   GoldenSummary
	WallSec  float64 // host wall clock of the golden phase
	// Snapshot capture stats of the checkpoint fast-forward: the count, the
	// in-RAM payload of the delta chain, and — when the engine runs with
	// CheckpointSpill — the payload moved to the spill file.
	Checkpoints            int
	CheckpointBytes        int
	CheckpointSpilledBytes int
}

// CheckpointTag compresses the capture stats into a progress-line column
// ("ckpt=8 mem=1.2MiB", plus " spill=9.5MiB" on spilled runs, or
// "ckpt=off" when snapshots are disabled). Both CLIs print it, so the
// per-scenario checkpoint counts the telemetry tests pin appear on every
// surface the same way.
func (e GoldenDone) CheckpointTag() string {
	if e.Checkpoints == 0 {
		return "ckpt=off"
	}
	tag := fmt.Sprintf("ckpt=%d mem=%s", e.Checkpoints, byteSize(e.CheckpointBytes))
	if e.CheckpointSpilledBytes > 0 {
		tag += " spill=" + byteSize(e.CheckpointSpilledBytes)
	}
	return tag
}

// byteSize renders a byte count compactly ("412B", "3.5KiB", "9.1MiB").
func byteSize(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// JobDone reports one completed injection job (a batch of faults). WallSec
// is the host wall-clock span of this job alone — the per-job spans that
// Result.ExclusiveCompute sums — and Done/Total track the campaign's
// injection progress.
type JobDone struct {
	Scenario npb.Scenario
	Domain   fault.Model
	Lo, Hi   int     // fault-index range [Lo, Hi) of the job
	WallSec  float64 // host wall clock of this job
	Done     int     // injection runs finished for this campaign so far
	Total    int     // injection runs the campaign will execute
}

// Key returns the campaign's database identity.
func (e JobDone) Key() string { return Key(e.Scenario, e.Domain) }

// ScenarioDone retires one (scenario, domain) campaign: Result is set on
// success, Err on failure. Campaigns abandoned by context cancellation
// produce no ScenarioDone — MatrixDone carries the tally.
type ScenarioDone struct {
	Key    string
	Result *Result // nil when Err is set
	Err    error
}

// MatrixDone is the final event of every Engine run: how many campaigns
// completed fresh, were skipped via the store, or failed (including those
// abandoned on cancellation), plus the run's first error in job order (the
// context error when the run was cancelled).
type MatrixDone struct {
	Completed int
	Skipped   int
	Failed    int
	WallSec   float64
	Err       error
}

func (ScenarioStarted) event() {}
func (GoldenDone) event()      {}
func (JobDone) event()         {}
func (ScenarioDone) event()    {}
func (MatrixDone) event()      {}

// Collector folds an Engine event stream into live progress lines and an
// end-of-run summary — the one consumer both CLIs share instead of bespoke
// printing. It is safe for use from one consuming goroutine while other
// goroutines read the summary accessors.
type Collector struct {
	w     io.Writer
	total int

	mu        sync.Mutex
	completed int
	failed    int
	skipped   int
	results   []*Result
	cover     map[string][]JobSpan // per-campaign fault ranges seen via JobDone
	totals    map[string]int       // per-campaign injection totals (JobDone.Total)
	firstJob  time.Time            // when the first JobDone arrived (ETA epoch)
	err       error
}

// NewCollector returns a collector writing progress lines to w (nil
// discards them). total is the expected campaign count, used only for the
// [done/total] progress prefix; 0 leaves the prefix out.
func NewCollector(w io.Writer, total int) *Collector {
	return &Collector{w: w, total: total}
}

// Consume folds events until the stream ends: either MatrixDone arrives or
// the channel is closed. It is the goroutine body callers pair with an
// Engine run.
func (c *Collector) Consume(events <-chan Event) {
	for ev := range events {
		if c.Handle(ev) {
			return
		}
	}
}

// Handle folds one event and reports whether it was the final MatrixDone.
func (c *Collector) Handle(ev Event) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev := ev.(type) {
	case JobDone:
		// Fold the job's fault range into the campaign's coverage. Ranges
		// are merged, not summed: a re-issued distributed shard (or any
		// other duplicated beat) reports the same [Lo, Hi) twice, and the
		// progress accounting must count each fault once — the same rule
		// the coordinator's status page applies to its Injected total.
		if c.cover == nil {
			c.cover = make(map[string][]JobSpan)
			c.totals = make(map[string]int)
		}
		if c.firstJob.IsZero() {
			c.firstJob = time.Now()
		}
		if ev.Hi > ev.Lo {
			key := ev.Key()
			c.cover[key] = append(c.cover[key], JobSpan{Lo: ev.Lo, Hi: ev.Hi, WallSec: ev.WallSec})
			c.totals[key] = ev.Total
		}
	case GoldenDone:
		c.printf("%s%-24s golden %.1fs %s\n", c.prefix(), ev.Scenario.ID(), ev.WallSec, ev.CheckpointTag())
	case ScenarioDone:
		if ev.Err != nil {
			c.failed++
			c.printf("%s%-24s FAILED: %v\n", c.prefix(), ev.Key, ev.Err)
			return false
		}
		c.completed++
		c.results = append(c.results, ev.Result)
		c.printf("%s%-24s %s %s%s\n", c.prefix(), ev.Key, ev.Result.Counts, savingsTag(ev.Result), c.rateTagLocked())
	case MatrixDone:
		c.skipped, c.err = ev.Skipped, ev.Err
		// Count failures the engine saw but never announced per campaign
		// (cancellation abandons campaigns without a ScenarioDone each).
		if ev.Failed > c.failed {
			c.failed = ev.Failed
		}
		return true
	}
	return false
}

// prefix renders the [done/total] progress column.
func (c *Collector) prefix() string {
	if c.total <= 0 {
		return ""
	}
	return fmt.Sprintf("[%3d/%3d] ", c.completed+c.failed, c.total)
}

func (c *Collector) printf(format string, args ...any) {
	if c.w != nil {
		fmt.Fprintf(c.w, format, args...)
	}
}

// Injected returns the number of distinct injection runs reported via
// JobDone events so far, with overlapping fault ranges counted once. On a
// distributed run this reconciles with the coordinator status page's
// Injected total (both surfaces count every fault exactly once, however
// many times a re-issued shard re-executed it).
func (c *Collector) Injected() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, spans := range c.cover {
		total += CoverageCount(spans)
	}
	return total
}

// statsLocked sums distinct injections and merged pool-busy seconds across
// campaigns. Both sides merge by fault-index range (CoverageCount /
// MergeJobSpans), so duplicated work — a re-issued distributed shard, a job
// re-executed across a cancel/resume — skews neither the numerator nor the
// denominator of the derived rate.
func (c *Collector) statsLocked() (injected int, busySec float64) {
	for _, spans := range c.cover {
		injected += CoverageCount(spans)
		busySec += MergeJobSpans(spans)
	}
	return injected, busySec
}

// Rate returns the observed injection throughput per pool-busy second
// (distinct injections over merged job spans — a per-worker number that is
// stable across worker counts); ok is false before any job has completed.
func (c *Collector) Rate() (perSec float64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rateLocked()
}

func (c *Collector) rateLocked() (float64, bool) {
	injected, busy := c.statsLocked()
	if injected == 0 || busy <= 0 {
		return 0, false
	}
	return float64(injected) / busy, true
}

// ETA estimates the wall-clock time left to finish every remaining
// injection at the observed wall rate (distinct injections since the first
// JobDone). Campaigns that have reported no JobDone yet are estimated at
// the mean per-campaign total of those that have; skipped campaigns cost
// nothing. ok is false before any job has completed. On a resumed matrix
// only fresh work enters both the numerator and the clock, so stored
// campaigns do not skew the estimate.
func (c *Collector) ETA() (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.etaLocked()
}

func (c *Collector) etaLocked() (time.Duration, bool) {
	injected, _ := c.statsLocked()
	if injected == 0 || c.firstJob.IsZero() {
		return 0, false
	}
	elapsed := time.Since(c.firstJob).Seconds()
	if elapsed <= 0 {
		return 0, false
	}
	remaining, totalSum := 0, 0
	for key, total := range c.totals {
		if rem := total - CoverageCount(c.cover[key]); rem > 0 {
			remaining += rem
		}
		totalSum += total
	}
	if c.total > 0 && len(c.totals) > 0 {
		// Campaigns not yet injecting (including ones that failed before
		// their first job — a slight overestimate) at the observed mean.
		if unstarted := c.total - c.skipped - len(c.totals); unstarted > 0 {
			remaining += unstarted * totalSum / len(c.totals)
		}
	}
	wallRate := float64(injected) / elapsed
	return time.Duration(float64(remaining) / wallRate * float64(time.Second)), true
}

// rateTagLocked renders the progress-line rate column (" 123 inj/s
// eta=1m30s"), empty before the first completed job.
func (c *Collector) rateTagLocked() string {
	rate, ok := c.rateLocked()
	if !ok {
		return ""
	}
	tag := fmt.Sprintf(" %.1f inj/s", rate)
	if eta, ok := c.etaLocked(); ok && eta > 0 {
		tag += fmt.Sprintf(" eta=%s", eta.Round(time.Second))
	}
	return tag
}

// Completed returns how many campaigns finished fresh.
func (c *Collector) Completed() int { c.mu.Lock(); defer c.mu.Unlock(); return c.completed }

// Skipped returns how many campaigns the store already held.
func (c *Collector) Skipped() int { c.mu.Lock(); defer c.mu.Unlock(); return c.skipped }

// Failed returns how many campaigns failed or were abandoned.
func (c *Collector) Failed() int { c.mu.Lock(); defer c.mu.Unlock(); return c.failed }

// Err returns the run error announced by MatrixDone.
func (c *Collector) Err() error { c.mu.Lock(); defer c.mu.Unlock(); return c.err }

// Results returns the freshly completed campaigns in completion order.
func (c *Collector) Results() []*Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Result(nil), c.results...)
}

// savingsTag compresses a campaign's snapshot-engine telemetry into the
// progress-line column ("save=2.3x prune=12%", or "save=off" when the
// campaign ran from reset).
func savingsTag(r *Result) string {
	save, prune, ok := r.SnapshotSavings()
	if !ok {
		return "save=off"
	}
	return fmt.Sprintf("save=%.1fx prune=%.0f%%", save, 100*prune)
}
