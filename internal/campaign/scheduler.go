// The matrix scheduler: one shared worker pool executes every phase of a
// multi-scenario campaign — golden runs, checkpoint fast-forwards and batched
// injection jobs — as interleavable tasks. While one scenario's injections
// drain, the next scenario's golden run already executes on another worker,
// so the pool never idles between scenarios the way the old sequential
// matrix loop did. Jobs for the same scenario under several fault domains
// form one group: the fault-free work (image build, golden run, profiling,
// checkpoint fast-forward) runs once and is shared, while each domain
// injects through its own counter-carrying CheckpointSet clone. Finished
// campaigns stream to the JSONL database immediately, which is what makes
// -resume of an interrupted matrix possible.
package campaign

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"serfi/internal/fault"
	"serfi/internal/fi"
	"serfi/internal/npb"
	"serfi/internal/profile"
)

// DefaultJobSize groups this many faults into one injection task (the paper
// batches simulations per HPC job to amortize scheduling).
const DefaultJobSize = 8

// ScenarioJob pairs one scenario with its fault domain and fault-list
// seed. Seeds are the caller's responsibility so that a subset run, a
// resumed run and a full matrix all draw identical fault lists for the
// same (scenario, domain) pair; the zero Domain is the paper's register
// single-bit-upset model.
type ScenarioJob struct {
	Scenario npb.Scenario
	Domain   fault.Model
	Seed     int64
}

// Key returns the job's database identity.
func (j ScenarioJob) Key() string { return Key(j.Scenario, j.Domain) }

// MatrixSpec configures a multi-scenario campaign on the shared scheduler.
type MatrixSpec struct {
	Jobs   []ScenarioJob
	Faults int
	// Workers bounds the host worker pool; 0 = GOMAXPROCS.
	Workers int
	// JobSize groups faults into injection tasks; 0 = DefaultJobSize.
	JobSize int
	// Snapshots is the per-scenario checkpoint count: 0 picks
	// fi.DefaultCheckpoints, negative disables snapshots (every injection
	// re-executes from reset). Outcome counts are bit-identical either way.
	Snapshots int
	// MaxOpen bounds how many scenarios may hold golden state and
	// checkpoints at once (memory backpressure); 0 picks a default.
	MaxOpen int
	// SamplePeriod for the golden profiling runs; 0 picks a default.
	SamplePeriod uint64
	// DB, when set, receives one JSONL record per finished scenario, in
	// completion order, each line written atomically.
	DB io.Writer
	// Skip maps campaign keys (campaign.Key: scenario ID, domain-qualified
	// for non-register domains) to already-completed results loaded from an
	// interrupted run's database; matching jobs are not re-executed and
	// their prior results are returned in place.
	Skip map[string]*Result
	// Progress, when set, is called once per freshly completed scenario
	// (not for skipped ones). Calls are serialized by the scheduler, so
	// the callback may mutate caller state without locking.
	Progress func(*Result)
}

// domainState tracks one (scenario, domain) campaign within its group.
type domainState struct {
	idx    int // index into spec.Jobs / results
	job    ScenarioJob
	cs     *fi.CheckpointSet // clone sharing the group's snapshots, own counters
	dom    fault.Domain
	faults []fi.Fault
	runs   []fi.Result

	remaining atomic.Int64 // injection runs left
}

// scenarioState tracks one open scenario group — every domain campaign of
// one (scenario, seed) pair — across its scheduler tasks. The fault-free
// work (image build, golden run, profiling, checkpoint fast-forward) runs
// once per group and is shared by all of its domains.
type scenarioState struct {
	job     ScenarioJob // scenario+seed of the group
	domains []*domainState
	g       *fi.Golden
	cs      *fi.CheckpointSet // base set; domains inject through clones

	openDomains atomic.Int64 // domain campaigns still running
	t0          time.Time
	goldenWall  float64
	apiCalls    uint64
	features    profile.Features
}

// RunMatrix executes every scenario job through the shared scheduler and
// returns results in job order. On error the first failure (in job order) is
// reported; unaffected scenarios still complete and are returned.
func RunMatrix(spec MatrixSpec) ([]*Result, error) {
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobSize := spec.JobSize
	if jobSize <= 0 {
		jobSize = DefaultJobSize
	}
	snapshots := spec.Snapshots
	if snapshots == 0 {
		snapshots = fi.DefaultCheckpoints
	}
	if snapshots < 0 {
		snapshots = 0
	}
	maxOpen := spec.MaxOpen
	if maxOpen <= 0 {
		maxOpen = workers
		if maxOpen > 8 {
			maxOpen = 8
		}
	}
	samplePeriod := spec.SamplePeriod
	if samplePeriod == 0 {
		samplePeriod = 97
	}

	n := len(spec.Jobs)
	results := make([]*Result, n)
	errs := make([]error, n)

	injJobs := (spec.Faults + jobSize - 1) / jobSize
	if injJobs < 1 {
		injJobs = 1
	}
	// The task queue is sized for every task the matrix can ever enqueue,
	// so no producer — worker or feeder — ever blocks on it.
	tasks := make(chan func(), n*(injJobs+1))
	sem := make(chan struct{}, maxOpen) // open-scenario slots
	var open sync.WaitGroup             // fresh scenarios still in flight
	var dbMu sync.Mutex

	var workerWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for t := range tasks {
				t()
			}
		}()
	}

	// closeGroup retires an open scenario group, recording err (if any) for
	// every domain campaign in it that has no result yet.
	closeGroup := func(st *scenarioState, err error) {
		if err != nil {
			for _, ds := range st.domains {
				if results[ds.idx] == nil && errs[ds.idx] == nil {
					errs[ds.idx] = fmt.Errorf("%s: %w", ds.job.Key(), err)
				}
			}
		}
		st.cs = nil // drop checkpoint RAM before releasing the slot
		for _, ds := range st.domains {
			ds.cs = nil
		}
		<-sem
		open.Done()
	}

	// domainDone retires one domain campaign; the group slot is released
	// when its last domain finishes. Sibling domains keep running after one
	// domain fails.
	domainDone := func(st *scenarioState, ds *domainState, err error) {
		if err != nil {
			errs[ds.idx] = fmt.Errorf("%s: %w", ds.job.Key(), err)
		}
		if st.openDomains.Add(-1) == 0 {
			closeGroup(st, nil)
		}
	}

	assemble := func(st *scenarioState, ds *domainState) {
		simulated, fromReset := ds.cs.SimulatedInstructions()
		pruned, _ := ds.cs.PruneStats()
		res := &Result{
			Scenario:        ds.job.Scenario,
			Domain:          ds.job.Domain,
			Faults:          spec.Faults,
			Seed:            ds.job.Seed,
			GoldenWallSec:   st.goldenWall,
			CampaignWallSec: time.Since(st.t0).Seconds(),
			Golden: GoldenSummary{
				AppStart: st.g.AppStart,
				AppEnd:   st.g.AppEnd,
				Retired:  st.g.Retired,
				Cycles:   st.g.Cycles,
			},
			Features: st.features,
			APICalls: st.apiCalls,
			Runs:     ds.runs,
		}
		if ds.cs.Len() > 0 {
			// Meaningful only under snapshot acceleration; from-reset runs
			// leave the observability fields zero.
			res.SimulatedInstr = simulated
			res.FromResetInstr = fromReset
			res.PrunedRuns = int(pruned)
		}
		for _, r := range ds.runs {
			res.Counts.Add(r.Outcome)
		}
		results[ds.idx] = res
		if spec.DB != nil || spec.Progress != nil {
			// One mutex serializes both the database stream and the
			// progress callback across completing workers.
			dbMu.Lock()
			var err error
			if spec.DB != nil {
				err = writeRecord(spec.DB, res)
			}
			if err == nil && spec.Progress != nil {
				spec.Progress(res)
			}
			dbMu.Unlock()
			if err != nil {
				domainDone(st, ds, fmt.Errorf("stream record: %w", err))
				return
			}
		}
		domainDone(st, ds, nil)
	}

	golden := func(st *scenarioState) {
		st.t0 = time.Now()
		img, cfg, err := npb.BuildScenario(st.job.Scenario)
		if err != nil {
			closeGroup(st, err)
			return
		}
		gcfg := cfg
		gcfg.Profile = true
		gcfg.SamplePeriod = samplePeriod
		st.g, err = fi.RunGolden(img, gcfg, 0)
		if err != nil {
			closeGroup(st, err)
			return
		}
		st.goldenWall = time.Since(st.t0).Seconds()
		st.features = profile.Extract(img, st.g.Machine)
		st.apiCalls = profile.Build(img, st.g.Machine).CallsTo(profile.RuntimePrefixes...)

		st.cs, err = fi.BuildCheckpoints(img, cfg, st.g, snapshots)
		if err != nil {
			closeGroup(st, err)
			return
		}
		// Arm every domain campaign of the group before any finishes: all
		// share the golden reference and the captured snapshots, each
		// injects through its own counter-carrying clone.
		st.openDomains.Store(int64(len(st.domains)))
		for _, ds := range st.domains {
			ds.dom, err = fi.NewDomain(ds.job.Domain, img, cfg, st.g)
			if err != nil {
				domainDone(st, ds, err)
				continue
			}
			ds.faults = fi.List(ds.job.Seed, spec.Faults, ds.dom)
			ds.cs = st.cs.Clone()
			ds.runs = make([]fi.Result, len(ds.faults))
			if len(ds.faults) == 0 {
				assemble(st, ds)
				continue
			}
			ds.remaining.Store(int64(len(ds.faults)))
			for lo := 0; lo < len(ds.faults); lo += jobSize {
				hi := lo + jobSize
				if hi > len(ds.faults) {
					hi = len(ds.faults)
				}
				ds, lo, hi := ds, lo, hi
				tasks <- func() {
					for i := lo; i < hi; i++ {
						ds.runs[i] = ds.cs.InjectPoint(ds.dom, st.g, ds.faults[i])
					}
					if ds.remaining.Add(int64(lo-hi)) == 0 {
						assemble(st, ds)
					}
				}
			}
		}
	}

	// Feed scenario groups in order: jobs sharing a (scenario, seed) pair —
	// the same scenario under several fault domains — run their fault-free
	// phases once. The semaphore provides memory backpressure while the
	// buffered queue keeps workers from ever blocking.
	groups := make(map[string]*scenarioState, n)
	var order []*scenarioState
	for i, job := range spec.Jobs {
		if r, ok := spec.Skip[job.Key()]; ok {
			results[i] = r
			continue
		}
		gkey := fmt.Sprintf("%s/%d", job.Scenario.ID(), job.Seed)
		st := groups[gkey]
		if st == nil {
			st = &scenarioState{job: job}
			groups[gkey] = st
			order = append(order, st)
		}
		st.domains = append(st.domains, &domainState{idx: i, job: job})
	}
	for _, st := range order {
		st := st
		open.Add(1)
		sem <- struct{}{}
		tasks <- func() { golden(st) }
	}
	open.Wait()
	close(tasks)
	workerWG.Wait()

	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
