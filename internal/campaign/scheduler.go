// The matrix scheduler: one shared worker pool executes every phase of a
// multi-scenario campaign — golden runs, checkpoint fast-forwards and batched
// injection jobs — as interleavable tasks. While one scenario's injections
// drain, the next scenario's golden run already executes on another worker,
// so the pool never idles between scenarios the way the old sequential
// matrix loop did. Finished scenarios stream to the JSONL database
// immediately, which is what makes -resume of an interrupted matrix
// possible.
package campaign

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"serfi/internal/fi"
	"serfi/internal/npb"
	"serfi/internal/profile"
)

// DefaultJobSize groups this many faults into one injection task (the paper
// batches simulations per HPC job to amortize scheduling).
const DefaultJobSize = 8

// ScenarioJob pairs one scenario with its fault-list seed. Seeds are the
// caller's responsibility so that a subset run, a resumed run and a full
// matrix all draw identical fault lists for the same scenario.
type ScenarioJob struct {
	Scenario npb.Scenario
	Seed     int64
}

// MatrixSpec configures a multi-scenario campaign on the shared scheduler.
type MatrixSpec struct {
	Jobs   []ScenarioJob
	Faults int
	// Workers bounds the host worker pool; 0 = GOMAXPROCS.
	Workers int
	// JobSize groups faults into injection tasks; 0 = DefaultJobSize.
	JobSize int
	// Snapshots is the per-scenario checkpoint count: 0 picks
	// fi.DefaultCheckpoints, negative disables snapshots (every injection
	// re-executes from reset). Outcome counts are bit-identical either way.
	Snapshots int
	// MaxOpen bounds how many scenarios may hold golden state and
	// checkpoints at once (memory backpressure); 0 picks a default.
	MaxOpen int
	// SamplePeriod for the golden profiling runs; 0 picks a default.
	SamplePeriod uint64
	// DB, when set, receives one JSONL record per finished scenario, in
	// completion order, each line written atomically.
	DB io.Writer
	// Skip maps scenario IDs to already-completed results (loaded from an
	// interrupted run's database); matching scenarios are not re-executed
	// and their prior results are returned in place.
	Skip map[string]*Result
	// Progress, when set, is called once per freshly completed scenario
	// (not for skipped ones). Calls are serialized by the scheduler, so
	// the callback may mutate caller state without locking.
	Progress func(*Result)
}

// scenarioState tracks one open scenario across its scheduler tasks.
type scenarioState struct {
	idx    int
	job    ScenarioJob
	g      *fi.Golden
	cs     *fi.CheckpointSet
	faults []fi.Fault
	runs   []fi.Result

	remaining  atomic.Int64
	t0         time.Time
	goldenWall float64
	apiCalls   uint64
	features   profile.Features
}

// RunMatrix executes every scenario job through the shared scheduler and
// returns results in job order. On error the first failure (in job order) is
// reported; unaffected scenarios still complete and are returned.
func RunMatrix(spec MatrixSpec) ([]*Result, error) {
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobSize := spec.JobSize
	if jobSize <= 0 {
		jobSize = DefaultJobSize
	}
	snapshots := spec.Snapshots
	if snapshots == 0 {
		snapshots = fi.DefaultCheckpoints
	}
	if snapshots < 0 {
		snapshots = 0
	}
	maxOpen := spec.MaxOpen
	if maxOpen <= 0 {
		maxOpen = workers
		if maxOpen > 8 {
			maxOpen = 8
		}
	}
	samplePeriod := spec.SamplePeriod
	if samplePeriod == 0 {
		samplePeriod = 97
	}

	n := len(spec.Jobs)
	results := make([]*Result, n)
	errs := make([]error, n)

	injJobs := (spec.Faults + jobSize - 1) / jobSize
	if injJobs < 1 {
		injJobs = 1
	}
	// The task queue is sized for every task the matrix can ever enqueue,
	// so no producer — worker or feeder — ever blocks on it.
	tasks := make(chan func(), n*(injJobs+1))
	sem := make(chan struct{}, maxOpen) // open-scenario slots
	var open sync.WaitGroup             // fresh scenarios still in flight
	var dbMu sync.Mutex

	var workerWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for t := range tasks {
				t()
			}
		}()
	}

	// close retires an open scenario, with or without a result.
	finish := func(st *scenarioState, err error) {
		if err != nil {
			errs[st.idx] = fmt.Errorf("%s: %w", st.job.Scenario.ID(), err)
		}
		st.cs = nil // drop checkpoint RAM before releasing the slot
		<-sem
		open.Done()
	}

	assemble := func(st *scenarioState) {
		res := &Result{
			Scenario:        st.job.Scenario,
			Faults:          spec.Faults,
			Seed:            st.job.Seed,
			GoldenWallSec:   st.goldenWall,
			CampaignWallSec: time.Since(st.t0).Seconds(),
			Golden: GoldenSummary{
				AppStart: st.g.AppStart,
				AppEnd:   st.g.AppEnd,
				Retired:  st.g.Retired,
				Cycles:   st.g.Cycles,
			},
			Features: st.features,
			APICalls: st.apiCalls,
			Runs:     st.runs,
		}
		for _, r := range st.runs {
			res.Counts.Add(r.Outcome)
		}
		results[st.idx] = res
		if spec.DB != nil || spec.Progress != nil {
			// One mutex serializes both the database stream and the
			// progress callback across completing workers.
			dbMu.Lock()
			var err error
			if spec.DB != nil {
				err = writeRecord(spec.DB, res)
			}
			if err == nil && spec.Progress != nil {
				spec.Progress(res)
			}
			dbMu.Unlock()
			if err != nil {
				finish(st, fmt.Errorf("stream record: %w", err))
				return
			}
		}
		finish(st, nil)
	}

	golden := func(st *scenarioState) {
		st.t0 = time.Now()
		img, cfg, err := npb.BuildScenario(st.job.Scenario)
		if err != nil {
			finish(st, err)
			return
		}
		gcfg := cfg
		gcfg.Profile = true
		gcfg.SamplePeriod = samplePeriod
		st.g, err = fi.RunGolden(img, gcfg, 0)
		if err != nil {
			finish(st, err)
			return
		}
		st.goldenWall = time.Since(st.t0).Seconds()
		st.features = profile.Extract(img, st.g.Machine)
		st.apiCalls = profile.Build(img, st.g.Machine).CallsTo(profile.RuntimePrefixes...)

		st.faults = fi.FaultList(st.job.Seed, spec.Faults, st.g, cfg.ISA.Feat(), cfg.Cores)
		st.cs, err = fi.BuildCheckpoints(img, cfg, st.g, snapshots)
		if err != nil {
			finish(st, err)
			return
		}
		st.runs = make([]fi.Result, len(st.faults))
		if len(st.faults) == 0 {
			assemble(st)
			return
		}
		st.remaining.Store(int64(len(st.faults)))
		for lo := 0; lo < len(st.faults); lo += jobSize {
			hi := lo + jobSize
			if hi > len(st.faults) {
				hi = len(st.faults)
			}
			lo, hi := lo, hi
			tasks <- func() {
				for i := lo; i < hi; i++ {
					st.runs[i] = st.cs.Inject(st.g, st.faults[i])
				}
				if st.remaining.Add(int64(lo-hi)) == 0 {
					assemble(st)
				}
			}
		}
	}

	// Feed scenarios in order; the semaphore provides memory backpressure
	// while the buffered queue keeps workers from ever blocking.
	for i, job := range spec.Jobs {
		if r, ok := spec.Skip[job.Scenario.ID()]; ok {
			results[i] = r
			continue
		}
		st := &scenarioState{idx: i, job: job}
		open.Add(1)
		sem <- struct{}{}
		tasks <- func() { golden(st) }
	}
	open.Wait()
	close(tasks)
	workerWG.Wait()

	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
