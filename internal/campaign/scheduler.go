// Legacy matrix-scheduler entry points, kept as thin shims over the Engine
// (engine.go) so pre-Engine callers and the golden-compat/determinism
// tests keep their exact behavior: RunMatrix(MatrixSpec) is New(opts...).
// RunMatrix(context.Background(), jobs) with the spec's DB/Skip/Progress
// trio adapted onto the Store interface.
package campaign

import (
	"context"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"serfi/internal/fault"
	"serfi/internal/fi"
	"serfi/internal/npb"
	"serfi/internal/profile"
	"serfi/internal/prop"
)

// DefaultJobSize groups this many faults into one injection task (the paper
// batches simulations per HPC job to amortize scheduling).
const DefaultJobSize = 8

// ScenarioJob pairs one scenario with its fault domain and fault-list
// seed. Seeds are the caller's responsibility so that a subset run, a
// resumed run and a full matrix all draw identical fault lists for the
// same (scenario, domain) pair (Engine.JobsFor encodes the convention);
// the zero Domain is the paper's register single-bit-upset model.
type ScenarioJob struct {
	Scenario npb.Scenario
	Domain   fault.Model
	Seed     int64
}

// Key returns the job's database identity.
func (j ScenarioJob) Key() string { return Key(j.Scenario, j.Domain) }

// MatrixSpec configures a multi-scenario campaign for the legacy RunMatrix
// entry point. New code should construct an Engine instead: every field
// maps onto an Engine option (Workers, JobSize, Snapshots, MaxOpen,
// SamplePeriod, Faults), DB+Skip onto WithStore, and Progress onto the
// typed event stream.
type MatrixSpec struct {
	Jobs   []ScenarioJob
	Faults int
	// Workers bounds the host worker pool; 0 = GOMAXPROCS.
	Workers int
	// JobSize groups faults into injection tasks; 0 = DefaultJobSize.
	JobSize int
	// Snapshots is the per-scenario checkpoint count: 0 picks
	// fi.DefaultCheckpoints, negative disables snapshots (every injection
	// re-executes from reset). Outcome counts are bit-identical either way.
	Snapshots int
	// MaxOpen bounds how many scenarios may hold golden state and
	// checkpoints at once (memory backpressure); 0 picks a default.
	MaxOpen int
	// SamplePeriod for the golden profiling runs; 0 picks a default.
	SamplePeriod uint64
	// DB, when set, receives one JSONL record per finished scenario, in
	// completion order, each line written atomically.
	DB io.Writer
	// Skip maps campaign keys (campaign.Key: scenario ID, domain-qualified
	// for non-register domains) to already-completed results loaded from an
	// interrupted run's database; matching jobs are not re-executed and
	// their prior results are returned in place.
	Skip map[string]*Result
	// Progress, when set, is called once per freshly completed scenario
	// (not for skipped ones). Calls are serialized by the scheduler, so
	// the callback may mutate caller state without locking.
	Progress func(*Result)
}

// RunMatrix executes every scenario job through the shared scheduler and
// returns results in job order. On error the first failure (in job order) is
// reported; unaffected scenarios still complete and are returned.
//
// Deprecated-style shim: this is Engine.RunMatrix with a background
// context; build an Engine for cancellation, typed events and Store-backed
// resume.
func RunMatrix(spec MatrixSpec) ([]*Result, error) {
	eng := New(
		Workers(spec.Workers),
		JobSize(spec.JobSize),
		Snapshots(spec.Snapshots),
		MaxOpen(spec.MaxOpen),
		SamplePeriod(spec.SamplePeriod),
		Faults(spec.Faults),
	)
	if spec.DB != nil || spec.Skip != nil || spec.Progress != nil {
		eng.store = &streamStore{w: spec.DB, skip: spec.Skip, progress: spec.Progress}
	}
	return eng.RunMatrix(context.Background(), spec.Jobs)
}

// domainState tracks one (scenario, domain) campaign within its group.
type domainState struct {
	idx    int // index into the jobs / results slices
	job    ScenarioJob
	cs     *fi.CheckpointSet // clone sharing the group's snapshots, own counters
	dom    fault.Domain
	faults []fi.Fault
	runs   []fi.Result
	// traces holds the propagation trace of each unmasked run when the
	// engine traces propagation (nil entries: masked or untraced). Jobs
	// write disjoint indices concurrently, like runs.
	traces []*prop.Trace

	remaining atomic.Int64 // injection runs left
	done      atomic.Int64 // injection runs finished (JobDone progress)
	jobNanos  atomic.Int64 // summed host wall clock of completed jobs
	cancelled atomic.Bool  // some injection job was abandoned by ctx

	spanMu sync.Mutex
	spans  []JobSpan // per-job spans of completed jobs (behind JobWallSec)

	traceMu  sync.Mutex
	traceErr error // first propagation-tracer failure, fatal for the domain
}

// noteTraceErr records the first tracer failure (workers run concurrently).
func (ds *domainState) noteTraceErr(err error) {
	ds.traceMu.Lock()
	if ds.traceErr == nil {
		ds.traceErr = err
	}
	ds.traceMu.Unlock()
}

// takeTraceErr returns the recorded tracer failure, if any.
func (ds *domainState) takeTraceErr() error {
	ds.traceMu.Lock()
	defer ds.traceMu.Unlock()
	return ds.traceErr
}

// addSpan records one completed job's span (workers run concurrently).
func (ds *domainState) addSpan(lo, hi int, sec float64) {
	ds.spanMu.Lock()
	ds.spans = append(ds.spans, JobSpan{Lo: lo, Hi: hi, WallSec: sec})
	ds.spanMu.Unlock()
}

// takeSpans returns the recorded spans sorted by fault-index range (the
// order Result.JobSpans documents).
func (ds *domainState) takeSpans() []JobSpan {
	ds.spanMu.Lock()
	spans := ds.spans
	ds.spans = nil
	ds.spanMu.Unlock()
	SortJobSpans(spans)
	return spans
}

// scenarioState tracks one open scenario group — every domain campaign of
// one (scenario, seed) pair — across its scheduler tasks. The fault-free
// work (image build, golden run, profiling, checkpoint fast-forward) runs
// once per group and is shared by all of its domains.
type scenarioState struct {
	job     ScenarioJob // scenario+seed of the group
	domains []*domainState
	g       *fi.Golden
	cs      *fi.CheckpointSet // base set; domains inject through clones
	tracer  *prop.Tracer      // propagation tracer over the group's snapshots (nil when off)

	openDomains atomic.Int64 // domain campaigns still running
	t0          time.Time
	goldenWall  float64
	apiCalls    uint64
	features    profile.Features

	// Observability bookkeeping: the group's trace track, and the checkpoint
	// byte counts added to the resident/spilled gauges at GoldenDone (to be
	// subtracted again when the group closes).
	tid         int
	obsResident int
	obsSpilled  int
}
