// Engine observability: the WithMetrics / WithTracer options and the
// metric-instrument bundle RunMatrix updates at phase and job boundaries.
// Updates are batched per event — one set of atomic adds per scenario
// phase, per injection job, per campaign — never per injection run or per
// retired instruction, and they observe host progress only, so campaigns
// stay byte-identical with telemetry attached.
package campaign

import "serfi/internal/obs"

// WithMetrics attaches a metrics registry: RunMatrix registers the engine's
// metric families there and updates them as phases, jobs and campaigns
// retire. nil (the default) records into a private inert registry, so
// instrumented paths need no enabled-checks. Pass obs.Default to share one
// exposition with the simulator-layer instruments (fi, mach, mem).
func WithMetrics(r *obs.Registry) Option { return func(e *Engine) { e.metrics = r } }

// WithTracer attaches a span trace journal: RunMatrix records one span per
// fault-free phase (image build, golden run, profiling, checkpoint
// fast-forward) and one per injection job, on one track per scenario group
// so a group's phases and jobs line up in the Chrome trace export. nil (the
// default) records nothing.
func WithTracer(t *obs.Tracer) Option { return func(e *Engine) { e.tracer = t } }

// engineMetrics holds the engine's instruments, resolved against the run's
// registry once per RunMatrix call. Registration is idempotent, so
// sequential or concurrent runs over one registry share families.
type engineMetrics struct {
	scenariosStarted obs.Counter
	goldensDone      obs.Counter
	jobsQueued       obs.Counter
	jobsRunning      obs.Gauge
	jobsDone         obs.Counter
	injections       obs.CounterVec // by outcome
	prunedRuns       obs.Counter
	ckptResident     obs.Gauge
	ckptSpilled      obs.Gauge
	campaigns        obs.CounterVec // by status
}

func newEngineMetrics(r *obs.Registry) *engineMetrics {
	if r == nil {
		// Inert sink: a private registry nothing ever exposes.
		r = obs.NewRegistry()
	}
	return &engineMetrics{
		scenariosStarted: r.Counter("serfi_campaign_scenarios_started_total", "Scenario groups whose fault-free phases have started."),
		goldensDone:      r.Counter("serfi_campaign_goldens_total", "Completed fault-free phases (golden run, profiling, checkpoint capture)."),
		jobsQueued:       r.Counter("serfi_campaign_jobs_queued_total", "Injection jobs enqueued on the worker pool."),
		jobsRunning:      r.Gauge("serfi_campaign_jobs_running", "Injection jobs currently executing."),
		jobsDone:         r.Counter("serfi_campaign_jobs_done_total", "Injection jobs completed (jobs abandoned by cancellation excluded)."),
		injections:       r.CounterVec("serfi_campaign_injections_total", "Classified injection runs, by outcome.", "outcome"),
		prunedRuns:       r.Counter("serfi_campaign_pruned_runs_total", "Injection runs scored by convergence pruning."),
		ckptResident:     r.Gauge("serfi_campaign_checkpoint_resident_bytes", "Checkpoint RAM payload resident across open scenario groups."),
		ckptSpilled:      r.Gauge("serfi_campaign_checkpoint_spilled_bytes", "Checkpoint RAM payload on spill files across open scenario groups."),
		campaigns:        r.CounterVec("serfi_campaign_campaigns_total", "Retired (scenario, domain) campaigns, by status.", "status"),
	}
}
