package campaign_test

import (
	"bytes"
	"strings"
	"testing"

	"serfi/internal/campaign"
	"serfi/internal/fault"
	"serfi/internal/fi"
	"serfi/internal/npb"
)

// legacyRow is a pre-domain database line (no "v", no "domain") as PR 1
// wrote them; it must load as a register-domain campaign keyed by the bare
// scenario ID.
const legacyRow = `{"scenario":"armv8/IS/SER-1","faults":4,"seed":7,` +
	`"counts":{"vanished":2,"ona":1,"omm":0,"ut":1,"hang":0},` +
	`"golden":{"AppStart":10,"AppEnd":20,"Retired":30,"Cycles":40},` +
	`"features":{"branch_pct":12.5},"api_calls":3}`

func TestReadDBLegacyRowsLoadAsReg(t *testing.T) {
	got, err := campaign.ReadDB(strings.NewReader(legacyRow + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	r := got["armv8/IS/SER-1"]
	if r == nil {
		t.Fatalf("legacy row not keyed by bare scenario ID: %v", got)
	}
	if r.Domain != fault.Reg {
		t.Errorf("legacy row domain = %v, want reg", r.Domain)
	}
	if r.Counts[fi.Vanished] != 2 || r.Counts[fi.UT] != 1 || r.Seed != 7 {
		t.Errorf("legacy row did not round-trip: %+v", r)
	}
}

func TestReadDBRejectsDuplicates(t *testing.T) {
	db := legacyRow + "\n" + legacyRow + "\n"
	if _, err := campaign.ReadDB(strings.NewReader(db)); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate rows accepted: %v", err)
	}
	// Same scenario under different domains is NOT a duplicate.
	mem := strings.Replace(legacyRow, `{"scenario"`, `{"v":2,"domain":"mem","scenario"`, 1)
	got, err := campaign.ReadDB(strings.NewReader(legacyRow + "\n" + mem + "\n"))
	if err != nil {
		t.Fatalf("distinct domains rejected: %v", err)
	}
	if len(got) != 2 || got["armv8/IS/SER-1#mem"] == nil {
		t.Errorf("domain-qualified key missing: %v", got)
	}
}

func TestReadDBRejectsUnknownVersion(t *testing.T) {
	row := strings.Replace(legacyRow, `{"scenario"`, `{"v":9,"scenario"`, 1)
	if _, err := campaign.ReadDB(strings.NewReader(row + "\n")); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("unknown record version accepted: %v", err)
	}
}

func TestReadDBRejectsUnversionedDomainRow(t *testing.T) {
	row := strings.Replace(legacyRow, `{"scenario"`, `{"domain":"mem","scenario"`, 1)
	if _, err := campaign.ReadDB(strings.NewReader(row + "\n")); err == nil {
		t.Error("unversioned row with a domain field accepted")
	}
}

func TestReadDBRejectsBadDomain(t *testing.T) {
	row := strings.Replace(legacyRow, `{"scenario"`, `{"v":2,"domain":"cosmic","scenario"`, 1)
	if _, err := campaign.ReadDB(strings.NewReader(row + "\n")); err == nil ||
		!strings.Contains(err.Error(), "cosmic") {
		t.Errorf("unknown domain accepted: %v", err)
	}
}

// TestDomainDBRoundTrip writes a non-register result and reloads it.
func TestDomainDBRoundTrip(t *testing.T) {
	r := &campaign.Result{
		Scenario: npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1},
		Domain:   fault.IMem,
		Faults:   4,
		Seed:     11,
	}
	r.Counts[fi.ONA] = 3
	r.Counts[fi.UT] = 1
	var buf bytes.Buffer
	if err := campaign.WriteDB(&buf, []*campaign.Result{r}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"v":2`) || !strings.Contains(buf.String(), `"domain":"imem"`) {
		t.Fatalf("record not versioned: %s", buf.String())
	}
	got, err := campaign.ReadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l := got["armv8/IS/SER-1#imem"]
	if l == nil {
		t.Fatalf("imem key missing: %v", got)
	}
	if l.Domain != fault.IMem || l.Counts != r.Counts || l.Seed != 11 {
		t.Errorf("imem row did not round-trip: %+v", l)
	}
}

func TestParseKey(t *testing.T) {
	sc, d, err := campaign.ParseKey("armv7/MG/MPI-4#burst")
	if err != nil || d != fault.Burst || sc.App != "MG" || sc.Cores != 4 {
		t.Errorf("ParseKey = %v %v %v", sc, d, err)
	}
	sc, d, err = campaign.ParseKey("armv7/MG/MPI-4")
	if err != nil || d != fault.Reg {
		t.Errorf("bare ParseKey = %v %v %v", sc, d, err)
	}
	if _, _, err = campaign.ParseKey("armv7/MG/MPI-4#cosmic"); err == nil {
		t.Error("bad domain key accepted")
	}
}
