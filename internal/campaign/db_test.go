package campaign_test

import (
	"bytes"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"

	"serfi/internal/campaign"
	"serfi/internal/fault"
	"serfi/internal/fi"
	"serfi/internal/npb"
)

// legacyRow is a pre-domain database line (no "v", no "domain") as PR 1
// wrote them; it must load as a register-domain campaign keyed by the bare
// scenario ID.
const legacyRow = `{"scenario":"armv8/IS/SER-1","faults":4,"seed":7,` +
	`"counts":{"vanished":2,"ona":1,"omm":0,"ut":1,"hang":0},` +
	`"golden":{"AppStart":10,"AppEnd":20,"Retired":30,"Cycles":40},` +
	`"features":{"branch_pct":12.5},"api_calls":3}`

func TestReadDBLegacyRowsLoadAsReg(t *testing.T) {
	got, err := campaign.ReadDB(strings.NewReader(legacyRow + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	r := got["armv8/IS/SER-1"]
	if r == nil {
		t.Fatalf("legacy row not keyed by bare scenario ID: %v", got)
	}
	if r.Domain != fault.Reg {
		t.Errorf("legacy row domain = %v, want reg", r.Domain)
	}
	if r.Counts[fi.Vanished] != 2 || r.Counts[fi.UT] != 1 || r.Seed != 7 {
		t.Errorf("legacy row did not round-trip: %+v", r)
	}
}

func TestReadDBRejectsDuplicates(t *testing.T) {
	db := legacyRow + "\n" + legacyRow + "\n"
	if _, err := campaign.ReadDB(strings.NewReader(db)); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate rows accepted: %v", err)
	}
	// Same scenario under different domains is NOT a duplicate.
	mem := strings.Replace(legacyRow, `{"scenario"`, `{"v":2,"domain":"mem","scenario"`, 1)
	got, err := campaign.ReadDB(strings.NewReader(legacyRow + "\n" + mem + "\n"))
	if err != nil {
		t.Fatalf("distinct domains rejected: %v", err)
	}
	if len(got) != 2 || got["armv8/IS/SER-1#mem"] == nil {
		t.Errorf("domain-qualified key missing: %v", got)
	}
}

func TestReadDBRejectsUnknownVersion(t *testing.T) {
	row := strings.Replace(legacyRow, `{"scenario"`, `{"v":9,"scenario"`, 1)
	if _, err := campaign.ReadDB(strings.NewReader(row + "\n")); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("unknown record version accepted: %v", err)
	}
}

func TestReadDBRejectsUnversionedDomainRow(t *testing.T) {
	row := strings.Replace(legacyRow, `{"scenario"`, `{"domain":"mem","scenario"`, 1)
	if _, err := campaign.ReadDB(strings.NewReader(row + "\n")); err == nil {
		t.Error("unversioned row with a domain field accepted")
	}
}

func TestReadDBRejectsBadDomain(t *testing.T) {
	row := strings.Replace(legacyRow, `{"scenario"`, `{"v":2,"domain":"cosmic","scenario"`, 1)
	if _, err := campaign.ReadDB(strings.NewReader(row + "\n")); err == nil ||
		!strings.Contains(err.Error(), "cosmic") {
		t.Errorf("unknown domain accepted: %v", err)
	}
}

// TestDomainDBRoundTrip writes a non-register result and reloads it.
func TestDomainDBRoundTrip(t *testing.T) {
	r := &campaign.Result{
		Scenario: npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1},
		Domain:   fault.IMem,
		Faults:   4,
		Seed:     11,
	}
	r.Counts[fi.ONA] = 3
	r.Counts[fi.UT] = 1
	var buf bytes.Buffer
	if err := campaign.WriteDB(&buf, []*campaign.Result{r}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"v":2`) || !strings.Contains(buf.String(), `"domain":"imem"`) {
		t.Fatalf("record not versioned: %s", buf.String())
	}
	got, err := campaign.ReadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l := got["armv8/IS/SER-1#imem"]
	if l == nil {
		t.Fatalf("imem key missing: %v", got)
	}
	if l.Domain != fault.IMem || l.Counts != r.Counts || l.Seed != 11 {
		t.Errorf("imem row did not round-trip: %+v", l)
	}
}

// storeImpls builds one empty instance of every Store implementation.
func storeImpls(t *testing.T) map[string]campaign.Store {
	t.Helper()
	fs, err := campaign.OpenFileStore(t.TempDir() + "/db.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return map[string]campaign.Store{
		"mem":    campaign.NewMemStore(),
		"file":   fs,
		"stream": campaign.StreamStore(&bytes.Buffer{}, nil),
	}
}

func storeResult(app string, d fault.Model, faults int) *campaign.Result {
	r := &campaign.Result{
		Scenario: npb.Scenario{App: app, Mode: npb.Serial, ISA: "armv8", Cores: 1},
		Domain:   d,
		Faults:   faults,
		Seed:     5,
	}
	r.Counts[fi.Vanished] = faults
	return r
}

// TestStoreRejectsDuplicateAppend: a key already present must be rejected
// by every backend — campaign identities are immutable and resume skips
// them instead of rewriting.
func TestStoreRejectsDuplicateAppend(t *testing.T) {
	for name, st := range storeImpls(t) {
		r := storeResult("IS", fault.Reg, 4)
		if err := st.Put(r); err != nil {
			t.Fatalf("%s: first Put: %v", name, err)
		}
		if err := st.Put(storeResult("IS", fault.Reg, 4)); err == nil ||
			!strings.Contains(err.Error(), "duplicate") {
			t.Errorf("%s: duplicate Put accepted: %v", name, err)
		}
		// The same scenario under another domain is a distinct campaign.
		if err := st.Put(storeResult("IS", fault.Mem, 4)); err != nil {
			t.Errorf("%s: distinct-domain Put rejected: %v", name, err)
		}
		got, ok := st.Get(r.Key())
		if !ok || got.Faults != 4 {
			t.Errorf("%s: Get after duplicate rejection = %v %v", name, got, ok)
		}
	}
}

// TestStoreQueryEmptyPredicateSet: the zero Query selects the whole store
// in sorted key order.
func TestStoreQueryEmptyPredicateSet(t *testing.T) {
	for name, st := range storeImpls(t) {
		for _, r := range []*campaign.Result{
			storeResult("MG", fault.Reg, 2),
			storeResult("IS", fault.Reg, 2),
			storeResult("IS", fault.IMem, 2),
		} {
			if err := st.Put(r); err != nil {
				t.Fatal(err)
			}
		}
		all := st.Query(campaign.Query{})
		if len(all) != 3 {
			t.Fatalf("%s: empty query returned %d of 3 rows", name, len(all))
		}
		keys := st.Keys()
		for i, r := range all {
			if r.Key() != keys[i] {
				t.Errorf("%s: query order %q != sorted key order %q", name, r.Key(), keys[i])
			}
		}
		if !sort.StringsAreSorted(keys) {
			t.Errorf("%s: Keys not sorted: %v", name, keys)
		}
	}
}

// TestStoreQueryPredicates exercises the per-axis constraints and the
// arbitrary Match predicate.
func TestStoreQueryPredicates(t *testing.T) {
	st := campaign.NewMemStore()
	put := func(app, isaName string, mode npb.Mode, cores int, d fault.Model) {
		r := &campaign.Result{
			Scenario: npb.Scenario{App: app, Mode: mode, ISA: isaName, Cores: cores},
			Domain:   d, Faults: 1,
		}
		if err := st.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	put("IS", "armv8", npb.Serial, 1, fault.Reg)
	put("IS", "armv8", npb.MPI, 4, fault.Reg)
	put("IS", "armv7", npb.MPI, 4, fault.Mem)
	put("EP", "armv8", npb.OMP, 2, fault.Reg)

	if got := st.Query(campaign.Query{Apps: []string{"EP"}}); len(got) != 1 || got[0].Scenario.App != "EP" {
		t.Errorf("app query = %v", got)
	}
	if got := st.Query(campaign.Query{ISAs: []string{"armv7"}}); len(got) != 1 || got[0].Domain != fault.Mem {
		t.Errorf("isa query = %v", got)
	}
	if got := st.Query(campaign.Query{Modes: []npb.Mode{npb.MPI}}); len(got) != 2 {
		t.Errorf("mode query returned %d rows", len(got))
	}
	if got := st.Query(campaign.Query{Domains: []fault.Model{fault.Mem}}); len(got) != 1 {
		t.Errorf("domain query returned %d rows", len(got))
	}
	if got := st.Query(campaign.Query{
		ISAs:  []string{"armv8"},
		Match: func(sc npb.Scenario, _ fault.Model) bool { return sc.Cores > 1 },
	}); len(got) != 2 {
		t.Errorf("combined query returned %d rows", len(got))
	}
	if got := st.Query(campaign.Query{Cores: []int{8}}); len(got) != 0 {
		t.Errorf("no-match query returned %d rows", len(got))
	}
}

// TestFileStoreRejectsTruncatedLine: a JSONL line cut mid-record (torn
// write, disk-full interruption) must fail loudly at open, not load as a
// shorter database.
func TestFileStoreRejectsTruncatedLine(t *testing.T) {
	full := legacyRow + "\n"
	// Cut inside the second record's JSON.
	second := strings.Replace(legacyRow, "armv8/IS/SER-1", "armv8/MG/SER-1", 1)
	torn := full + second[:len(second)/2]
	path := t.TempDir() + "/torn.jsonl"
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.OpenFileStore(path); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Errorf("torn database accepted: %v", err)
	}
	// The same torn stream through the reader path.
	if _, err := campaign.ReadDB(strings.NewReader(torn)); err == nil {
		t.Error("ReadDB accepted a truncated trailing record")
	}
}

func TestParseKey(t *testing.T) {
	sc, d, err := campaign.ParseKey("armv7/MG/MPI-4#burst")
	if err != nil || d != fault.Burst || sc.App != "MG" || sc.Cores != 4 {
		t.Errorf("ParseKey = %v %v %v", sc, d, err)
	}
	sc, d, err = campaign.ParseKey("armv7/MG/MPI-4")
	if err != nil || d != fault.Reg {
		t.Errorf("bare ParseKey = %v %v %v", sc, d, err)
	}
	if _, _, err = campaign.ParseKey("armv7/MG/MPI-4#cosmic"); err == nil {
		t.Error("bad domain key accepted")
	}
}

// TestFileStoreFsyncDurability: a store opened with Fsync appends and
// flushes each record at Put — reopening the path (the crash-recovery
// read) sees every acknowledged campaign, and rejects duplicates exactly
// like the unsynced store.
func TestFileStoreFsyncDurability(t *testing.T) {
	path := t.TempDir() + "/sync.jsonl"
	st, err := campaign.OpenFileStore(path, campaign.Fsync())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(storeResult("IS", fault.Reg, 3)); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(storeResult("MG", fault.Mem, 3)); err != nil {
		t.Fatal(err)
	}
	// Reopen WITHOUT closing: the fsynced rows must already be on disk.
	re, err := campaign.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := len(re.Keys()); got != 2 {
		t.Fatalf("reopened fsync store holds %d campaigns, want 2", got)
	}
	if err := st.Put(storeResult("IS", fault.Reg, 3)); err == nil {
		t.Error("fsync store accepted a duplicate key")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreKeysDeterministic: Keys is sorted on every backend regardless
// of insertion order, so status output and record diffs are stable.
func TestStoreKeysDeterministic(t *testing.T) {
	for name, st := range storeImpls(t) {
		for _, r := range []*campaign.Result{
			storeResult("UA", fault.Reg, 1),
			storeResult("BT", fault.IMem, 1),
			storeResult("MG", fault.Burst, 1),
			storeResult("BT", fault.Reg, 1),
		} {
			if err := st.Put(r); err != nil {
				t.Fatal(err)
			}
		}
		want := append([]string(nil), st.Keys()...)
		sort.Strings(want)
		for trial := 0; trial < 3; trial++ {
			if got := st.Keys(); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: Keys() unstable: %v != %v", name, got, want)
			}
		}
	}
}
