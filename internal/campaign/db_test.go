package campaign_test

import (
	"bytes"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"

	"serfi/internal/campaign"
	"serfi/internal/fault"
	"serfi/internal/fi"
	"serfi/internal/npb"
	"serfi/internal/prop"
)

// legacyRow is a pre-domain database line (no "v", no "domain") as PR 1
// wrote them; it must load as a register-domain campaign keyed by the bare
// scenario ID.
const legacyRow = `{"scenario":"armv8/IS/SER-1","faults":4,"seed":7,` +
	`"counts":{"vanished":2,"ona":1,"omm":0,"ut":1,"hang":0},` +
	`"golden":{"AppStart":10,"AppEnd":20,"Retired":30,"Cycles":40},` +
	`"features":{"branch_pct":12.5},"api_calls":3}`

func TestReadDBLegacyRowsLoadAsReg(t *testing.T) {
	got, err := campaign.ReadDB(strings.NewReader(legacyRow + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	r := got["armv8/IS/SER-1"]
	if r == nil {
		t.Fatalf("legacy row not keyed by bare scenario ID: %v", got)
	}
	if r.Domain != fault.Reg {
		t.Errorf("legacy row domain = %v, want reg", r.Domain)
	}
	if r.Counts[fi.Vanished] != 2 || r.Counts[fi.UT] != 1 || r.Seed != 7 {
		t.Errorf("legacy row did not round-trip: %+v", r)
	}
}

func TestReadDBRejectsDuplicates(t *testing.T) {
	db := legacyRow + "\n" + legacyRow + "\n"
	if _, err := campaign.ReadDB(strings.NewReader(db)); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate rows accepted: %v", err)
	}
	// Same scenario under different domains is NOT a duplicate.
	mem := strings.Replace(legacyRow, `{"scenario"`, `{"v":2,"domain":"mem","scenario"`, 1)
	got, err := campaign.ReadDB(strings.NewReader(legacyRow + "\n" + mem + "\n"))
	if err != nil {
		t.Fatalf("distinct domains rejected: %v", err)
	}
	if len(got) != 2 || got["armv8/IS/SER-1#mem"] == nil {
		t.Errorf("domain-qualified key missing: %v", got)
	}
}

func TestReadDBRejectsUnknownVersion(t *testing.T) {
	row := strings.Replace(legacyRow, `{"scenario"`, `{"v":9,"scenario"`, 1)
	if _, err := campaign.ReadDB(strings.NewReader(row + "\n")); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("unknown record version accepted: %v", err)
	}
}

func TestReadDBRejectsUnversionedDomainRow(t *testing.T) {
	row := strings.Replace(legacyRow, `{"scenario"`, `{"domain":"mem","scenario"`, 1)
	if _, err := campaign.ReadDB(strings.NewReader(row + "\n")); err == nil {
		t.Error("unversioned row with a domain field accepted")
	}
}

func TestReadDBRejectsBadDomain(t *testing.T) {
	row := strings.Replace(legacyRow, `{"scenario"`, `{"v":2,"domain":"cosmic","scenario"`, 1)
	if _, err := campaign.ReadDB(strings.NewReader(row + "\n")); err == nil ||
		!strings.Contains(err.Error(), "cosmic") {
		t.Errorf("unknown domain accepted: %v", err)
	}
}

// TestDomainDBRoundTrip writes a non-register result and reloads it.
func TestDomainDBRoundTrip(t *testing.T) {
	r := &campaign.Result{
		Scenario: npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1},
		Domain:   fault.IMem,
		Faults:   4,
		Seed:     11,
	}
	r.Counts[fi.ONA] = 3
	r.Counts[fi.UT] = 1
	var buf bytes.Buffer
	if err := campaign.WriteDB(&buf, []*campaign.Result{r}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"v":2`) || !strings.Contains(buf.String(), `"domain":"imem"`) {
		t.Fatalf("record not versioned: %s", buf.String())
	}
	got, err := campaign.ReadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l := got["armv8/IS/SER-1#imem"]
	if l == nil {
		t.Fatalf("imem key missing: %v", got)
	}
	if l.Domain != fault.IMem || l.Counts != r.Counts || l.Seed != 11 {
		t.Errorf("imem row did not round-trip: %+v", l)
	}
}

// storeImpls builds one empty instance of every Store implementation.
func storeImpls(t *testing.T) map[string]campaign.Store {
	t.Helper()
	fs, err := campaign.OpenFileStore(t.TempDir() + "/db.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	ss, err := campaign.OpenSegmentedStore(t.TempDir() + "/segs")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ss.Close() })
	return map[string]campaign.Store{
		"mem":    campaign.NewMemStore(),
		"file":   fs,
		"stream": campaign.StreamStore(&bytes.Buffer{}, nil),
		"seg":    ss,
	}
}

func storeResult(app string, d fault.Model, faults int) *campaign.Result {
	r := &campaign.Result{
		Scenario: npb.Scenario{App: app, Mode: npb.Serial, ISA: "armv8", Cores: 1},
		Domain:   d,
		Faults:   faults,
		Seed:     5,
	}
	r.Counts[fi.Vanished] = faults
	return r
}

// TestStoreRejectsDuplicateAppend: a key already present must be rejected
// by every backend — campaign identities are immutable and resume skips
// them instead of rewriting.
func TestStoreRejectsDuplicateAppend(t *testing.T) {
	for name, st := range storeImpls(t) {
		r := storeResult("IS", fault.Reg, 4)
		if err := st.Put(r); err != nil {
			t.Fatalf("%s: first Put: %v", name, err)
		}
		if err := st.Put(storeResult("IS", fault.Reg, 4)); err == nil ||
			!strings.Contains(err.Error(), "duplicate") {
			t.Errorf("%s: duplicate Put accepted: %v", name, err)
		}
		// The same scenario under another domain is a distinct campaign.
		if err := st.Put(storeResult("IS", fault.Mem, 4)); err != nil {
			t.Errorf("%s: distinct-domain Put rejected: %v", name, err)
		}
		got, ok := st.Get(r.Key())
		if !ok || got.Faults != 4 {
			t.Errorf("%s: Get after duplicate rejection = %v %v", name, got, ok)
		}
	}
}

// TestStoreQueryEmptyPredicateSet: the zero Query selects the whole store
// in sorted key order.
func TestStoreQueryEmptyPredicateSet(t *testing.T) {
	for name, st := range storeImpls(t) {
		for _, r := range []*campaign.Result{
			storeResult("MG", fault.Reg, 2),
			storeResult("IS", fault.Reg, 2),
			storeResult("IS", fault.IMem, 2),
		} {
			if err := st.Put(r); err != nil {
				t.Fatal(err)
			}
		}
		all := st.Query(campaign.Query{})
		if len(all) != 3 {
			t.Fatalf("%s: empty query returned %d of 3 rows", name, len(all))
		}
		keys := st.Keys()
		for i, r := range all {
			if r.Key() != keys[i] {
				t.Errorf("%s: query order %q != sorted key order %q", name, r.Key(), keys[i])
			}
		}
		if !sort.StringsAreSorted(keys) {
			t.Errorf("%s: Keys not sorted: %v", name, keys)
		}
	}
}

// TestStoreQueryPredicates exercises the per-axis constraints and the
// arbitrary Match predicate.
func TestStoreQueryPredicates(t *testing.T) {
	st := campaign.NewMemStore()
	put := func(app, isaName string, mode npb.Mode, cores int, d fault.Model) {
		r := &campaign.Result{
			Scenario: npb.Scenario{App: app, Mode: mode, ISA: isaName, Cores: cores},
			Domain:   d, Faults: 1,
		}
		if err := st.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	put("IS", "armv8", npb.Serial, 1, fault.Reg)
	put("IS", "armv8", npb.MPI, 4, fault.Reg)
	put("IS", "armv7", npb.MPI, 4, fault.Mem)
	put("EP", "armv8", npb.OMP, 2, fault.Reg)

	if got := st.Query(campaign.Query{Apps: []string{"EP"}}); len(got) != 1 || got[0].Scenario.App != "EP" {
		t.Errorf("app query = %v", got)
	}
	if got := st.Query(campaign.Query{ISAs: []string{"armv7"}}); len(got) != 1 || got[0].Domain != fault.Mem {
		t.Errorf("isa query = %v", got)
	}
	if got := st.Query(campaign.Query{Modes: []npb.Mode{npb.MPI}}); len(got) != 2 {
		t.Errorf("mode query returned %d rows", len(got))
	}
	if got := st.Query(campaign.Query{Domains: []fault.Model{fault.Mem}}); len(got) != 1 {
		t.Errorf("domain query returned %d rows", len(got))
	}
	if got := st.Query(campaign.Query{
		ISAs:  []string{"armv8"},
		Match: func(sc npb.Scenario, _ fault.Model) bool { return sc.Cores > 1 },
	}); len(got) != 2 {
		t.Errorf("combined query returned %d rows", len(got))
	}
	if got := st.Query(campaign.Query{Cores: []int{8}}); len(got) != 0 {
		t.Errorf("no-match query returned %d rows", len(got))
	}
}

// TestFileStoreRejectsTruncatedLine: a JSONL line cut mid-record (torn
// write, disk-full interruption) must fail loudly at open, not load as a
// shorter database.
func TestFileStoreRejectsTruncatedLine(t *testing.T) {
	full := legacyRow + "\n"
	// Cut inside the second record's JSON.
	second := strings.Replace(legacyRow, "armv8/IS/SER-1", "armv8/MG/SER-1", 1)
	torn := full + second[:len(second)/2]
	path := t.TempDir() + "/torn.jsonl"
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.OpenFileStore(path); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Errorf("torn database accepted: %v", err)
	}
	// The same torn stream through the reader path.
	if _, err := campaign.ReadDB(strings.NewReader(torn)); err == nil {
		t.Error("ReadDB accepted a truncated trailing record")
	}
}

func TestParseKey(t *testing.T) {
	sc, d, err := campaign.ParseKey("armv7/MG/MPI-4#burst")
	if err != nil || d != fault.Burst || sc.App != "MG" || sc.Cores != 4 {
		t.Errorf("ParseKey = %v %v %v", sc, d, err)
	}
	sc, d, err = campaign.ParseKey("armv7/MG/MPI-4")
	if err != nil || d != fault.Reg {
		t.Errorf("bare ParseKey = %v %v %v", sc, d, err)
	}
	if _, _, err = campaign.ParseKey("armv7/MG/MPI-4#cosmic"); err == nil {
		t.Error("bad domain key accepted")
	}
}

// TestFileStoreFsyncDurability: a store opened with Fsync appends and
// flushes each record at Put — reopening the path (the crash-recovery
// read) sees every acknowledged campaign, and rejects duplicates exactly
// like the unsynced store.
func TestFileStoreFsyncDurability(t *testing.T) {
	path := t.TempDir() + "/sync.jsonl"
	st, err := campaign.OpenFileStore(path, campaign.Fsync())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(storeResult("IS", fault.Reg, 3)); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(storeResult("MG", fault.Mem, 3)); err != nil {
		t.Fatal(err)
	}
	// Reopen WITHOUT closing: the fsynced rows must already be on disk.
	re, err := campaign.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := len(re.Keys()); got != 2 {
		t.Fatalf("reopened fsync store holds %d campaigns, want 2", got)
	}
	if err := st.Put(storeResult("IS", fault.Reg, 3)); err == nil {
		t.Error("fsync store accepted a duplicate key")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreKeysDeterministic: Keys is sorted on every backend regardless
// of insertion order, so status output and record diffs are stable.
func TestStoreKeysDeterministic(t *testing.T) {
	for name, st := range storeImpls(t) {
		for _, r := range []*campaign.Result{
			storeResult("UA", fault.Reg, 1),
			storeResult("BT", fault.IMem, 1),
			storeResult("MG", fault.Burst, 1),
			storeResult("BT", fault.Reg, 1),
		} {
			if err := st.Put(r); err != nil {
				t.Fatal(err)
			}
		}
		want := append([]string(nil), st.Keys()...)
		sort.Strings(want)
		for trial := 0; trial < 3; trial++ {
			if got := st.Keys(); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: Keys() unstable: %v != %v", name, got, want)
			}
		}
	}
}

// recordedResult builds a v4 (RecordRuns) result with per-fault rows; the
// middle row carries a full propagation trace.
func recordedResult(app string, d fault.Model) *campaign.Result {
	r := &campaign.Result{
		Scenario:   npb.Scenario{App: app, Mode: npb.Serial, ISA: "armv8", Cores: 1},
		Domain:     d,
		Faults:     3,
		Seed:       9,
		RecordRuns: true,
		Runs: []fi.Result{
			{Fault: fault.Point{Domain: d, Index: 100, Core: 0, Reg: 3, Bit: 7}, Outcome: fi.Vanished},
			{Fault: fault.Point{Domain: d, Index: 200, Core: 0, Reg: 13, Bit: 1}, Outcome: fi.OMM},
			{Fault: fault.Point{Domain: d, Index: 300, Core: 0, Reg: 5, Bit: 62}, Outcome: fi.ONA},
		},
		Traces: []*prop.Trace{
			nil,
			{Escape: prop.EscapeMem, ArchInstr: 42, ArchCyc: 55, TimingInstr: -1,
				MemInstr: 48, XCoreInstr: -1, KernelInstr: -1},
			nil,
		},
	}
	r.Counts[fi.Vanished] = 1
	r.Counts[fi.OMM] = 1
	r.Counts[fi.ONA] = 1
	return r
}

// TestStoreQueryContentPredicates: MinVersion, HasProp and HasRuns select
// on row content (not identity) and behave identically on every backend.
func TestStoreQueryContentPredicates(t *testing.T) {
	for name, st := range storeImpls(t) {
		v2 := storeResult("IS", fault.Reg, 2)
		v3 := storeResult("MG", fault.Reg, 2)
		v3.Prop = &prop.Summary{Traced: 1, Escapes: map[string]int{"mem": 1}}
		v4 := recordedResult("IS", fault.Mem)
		for _, r := range []*campaign.Result{v2, v3, v4} {
			if err := st.Put(r); err != nil {
				t.Fatalf("%s: Put: %v", name, err)
			}
		}
		if got := st.Query(campaign.Query{MinVersion: 3}); len(got) != 2 {
			t.Errorf("%s: MinVersion 3 returned %d rows, want 2", name, len(got))
		}
		got := st.Query(campaign.Query{MinVersion: 4})
		if len(got) != 1 || !got[0].RecordRuns {
			t.Errorf("%s: MinVersion 4 = %v", name, got)
		}
		got = st.Query(campaign.Query{HasProp: true})
		if len(got) != 1 || got[0].Scenario.App != "MG" {
			t.Errorf("%s: HasProp = %v", name, got)
		}
		got = st.Query(campaign.Query{HasRuns: true})
		if len(got) != 1 || len(got[0].Runs) != 3 {
			t.Errorf("%s: HasRuns = %v", name, got)
		}
		// Content and identity predicates compose.
		if got := st.Query(campaign.Query{HasRuns: true, Apps: []string{"MG"}}); len(got) != 0 {
			t.Errorf("%s: HasRuns+app returned %d rows, want 0", name, len(got))
		}
	}
}

// TestRecordRunsDBRoundTrip: a v4 row reloads its per-fault tuples and
// outcomes exactly, its traced rows keep the escape class and
// arch-divergence latency (every other latency axis resets to -1), and
// re-writing the reloaded result reproduces the database byte for byte.
// Rows written without RecordRuns must not mention runs at all.
func TestRecordRunsDBRoundTrip(t *testing.T) {
	v4 := recordedResult("IS", fault.Reg)
	v2 := storeResult("EP", fault.Reg, 2)
	var buf bytes.Buffer
	if err := campaign.WriteDB(&buf, []*campaign.Result{v4, v2}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"v":4`) || !strings.Contains(lines[0], `"runs":[`) {
		t.Errorf("v4 row lacks version/runs: %s", lines[0])
	}
	if strings.Contains(lines[1], "runs") {
		t.Errorf("RecordRuns-off row mentions runs: %s", lines[1])
	}

	got, err := campaign.ReadDB(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	re := got[v4.Key()]
	if re == nil || !re.RecordRuns {
		t.Fatalf("v4 row did not reload as a recorded campaign: %+v", re)
	}
	if len(re.Runs) != len(v4.Runs) {
		t.Fatalf("reloaded %d runs, want %d", len(re.Runs), len(v4.Runs))
	}
	for i := range re.Runs {
		if re.Runs[i].Fault != v4.Runs[i].Fault || re.Runs[i].Outcome != v4.Runs[i].Outcome {
			t.Errorf("run %d did not round-trip: %+v vs %+v", i, re.Runs[i], v4.Runs[i])
		}
	}
	if re.Traces[0] != nil || re.Traces[2] != nil {
		t.Error("untraced rows grew traces on reload")
	}
	tr := re.Traces[1]
	if tr == nil || tr.Escape != prop.EscapeMem || tr.ArchInstr != 42 {
		t.Fatalf("traced row lost escape/latency: %+v", tr)
	}
	// The compact row persists only the escape class and the paper-facing
	// latency; the other axes read back as never-observed.
	if tr.ArchCyc != -1 || tr.MemInstr != -1 || tr.XCoreInstr != -1 || tr.KernelInstr != -1 {
		t.Errorf("reloaded trace invented latencies: %+v", tr)
	}

	var again bytes.Buffer
	if err := campaign.WriteDB(&again, []*campaign.Result{re, got[v2.Key()]}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), buf.Bytes()) {
		t.Error("write-read-rewrite is not byte-stable for v4 rows")
	}
}
