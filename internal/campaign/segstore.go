// The segmented JSONL store: the FileStore's append-only row format scaled
// to long-lived multi-tenant service traffic. One flat JSONL file serves a
// single matrix fine, but a persistent campaign queue accumulates rows
// forever and interleaves tenants; the segmented store keeps the row bytes
// identical (writeRecord/decodeRecordLine are shared, so a tenant's rows
// stay byte-for-byte comparable to a local engine run) while organizing
// them into size-rotated append-only segments per tenant namespace, with a
// key index rebuilt from segment footers at open and a compaction pass
// that merges superseded segments.
//
// Layout under the root directory:
//
//	root/default/seg-000001.jsonl        default ("") namespace
//	root/t-<ns>/seg-000001.jsonl         tenant namespace <ns>
//
// A segment holds three line kinds: canonical record rows (exactly the
// FileStore's JSONL rows), tombstones {"del":"<key>"} written by Delete,
// and — as the last line of a sealed segment — a footer carrying the
// segment's net key effect ({"footer":1,"live":{key:offset},"dead":[...]}).
// Opening a store reads only footers for sealed segments (plus a full scan
// of the unsealed tail segment), so open cost is proportional to the
// segment count, not the row count; rows load lazily by offset on Get.
// Replay order is segment-id order, later segments superseding earlier
// ones, which makes compaction crash-safe: the merged segment takes the
// HIGHEST merged id, so a crash that leaves stale lower-id segments behind
// still replays to the merged (newest) state.
package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"serfi/internal/fault"
	"serfi/internal/npb"
)

// DefaultSegmentBytes is the size threshold past which the active segment
// seals and a fresh one opens.
const DefaultSegmentBytes = 4 << 20

// segFooter is the last line of a sealed segment: the segment's net effect
// on the keyspace. Live maps each key that ends the segment alive to the
// byte offset of its row; Dead lists keys the segment net-deletes
// (tombstoned here, written in an earlier segment).
type segFooter struct {
	Footer int              `json:"footer"` // format version, 1
	Live   map[string]int64 `json:"live"`
	Dead   []string         `json:"dead,omitempty"`
}

// segProbe classifies one segment line without fully decoding it.
type segProbe struct {
	Footer   int    `json:"footer,omitempty"`
	Del      string `json:"del,omitempty"`
	Version  int    `json:"v,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	Domain   string `json:"domain,omitempty"`
}

// segment is one on-disk segment file of a tenant partition.
type segment struct {
	id     int
	path   string
	sealed bool
}

// rowRef locates one live row: its segment and the byte offset of its line.
type rowRef struct {
	seg *segment
	off int64
}

// tenantSegs is one tenant namespace's partition: its segment chain, the
// live-key index, the lazily filled row cache, and the write state of the
// unsealed active segment.
type tenantSegs struct {
	ns    string
	dir   string
	segs  []*segment
	idx   map[string]rowRef
	cache map[string]*Result

	active    *os.File // nil until the first Put after open/seal
	activeSeg *segment
	activeLen int64
	// Net effect of the active segment so far, for its eventual footer.
	activeLive map[string]int64
	activeDead map[string]bool

	rows int // data rows written across all segments (garbage = rows - len(idx))
}

// SegmentedStore is the multi-tenant segmented JSONL Store. Construct with
// OpenSegmentedStore. The store itself is the default ("") namespace view;
// Tenant(ns) returns isolated per-namespace views over the same root.
type SegmentedStore struct {
	root    string
	segMax  int64
	fsync   bool
	compact int // auto-compact when a tenant's superseded rows reach this; 0 = manual

	mu       sync.Mutex
	tenants  map[string]*tenantSegs
	compactQ chan string // pending auto-compaction namespaces
	closed   bool
	wg       sync.WaitGroup
}

// SegStoreOption configures OpenSegmentedStore.
type SegStoreOption func(*SegmentedStore)

// SegmentBytes sets the rotation threshold: an active segment at or past
// this size seals (footer written) and a fresh segment opens. 0 picks
// DefaultSegmentBytes.
func SegmentBytes(n int64) SegStoreOption { return func(s *SegmentedStore) { s.segMax = n } }

// SegmentSync makes every Put and Delete fsync the active segment before
// returning — the segmented analogue of the FileStore's Fsync option, with
// the same durability contract: an acknowledged row survives a host crash.
func SegmentSync() SegStoreOption { return func(s *SegmentedStore) { s.fsync = true } }

// CompactAfter enables background compaction: whenever a tenant partition
// accumulates at least n superseded rows (deleted or overwritten by a
// later segment), a background pass merges its sealed segments and drops
// the dead rows. 0 (the default) leaves compaction to explicit Compact
// calls.
func CompactAfter(n int) SegStoreOption { return func(s *SegmentedStore) { s.compact = n } }

// OpenSegmentedStore opens (or creates) the segmented store rooted at dir.
// Existing partitions are indexed from their segment footers; the unsealed
// tail segment of each partition is scanned in full. Rows themselves load
// lazily on Get/Query.
func OpenSegmentedStore(dir string, opts ...SegStoreOption) (*SegmentedStore, error) {
	s := &SegmentedStore{
		root:    dir,
		segMax:  DefaultSegmentBytes,
		tenants: make(map[string]*tenantSegs),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.segMax <= 0 {
		s.segMax = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		ns, ok := nsOfDir(e.Name())
		if !ok {
			continue
		}
		t, err := s.openTenant(ns)
		if err != nil {
			return nil, fmt.Errorf("segmented store %s: tenant %q: %w", dir, ns, err)
		}
		s.tenants[ns] = t
	}
	if s.tenants[""] == nil {
		t, err := s.openTenant("")
		if err != nil {
			return nil, err
		}
		s.tenants[""] = t
	}
	if s.compact > 0 {
		s.compactQ = make(chan string, 64)
		s.wg.Add(1)
		go s.compactLoop()
	}
	return s, nil
}

// tenantDir maps a namespace to its directory name; nsOfDir inverts it.
func tenantDir(ns string) string {
	if ns == "" {
		return "default"
	}
	return "t-" + ns
}

func nsOfDir(name string) (string, bool) {
	if name == "default" {
		return "", true
	}
	if rest, ok := strings.CutPrefix(name, "t-"); ok && rest != "" {
		return rest, true
	}
	return "", false
}

// ValidTenant reports whether ns is usable as a tenant namespace: empty
// (the default namespace) or a short path-safe token.
func ValidTenant(ns string) bool {
	if ns == "" {
		return true
	}
	if len(ns) > 64 {
		return false
	}
	for _, r := range ns {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return false
		}
	}
	return ns[0] != '.'
}

// openTenant indexes one tenant partition from disk.
func (s *SegmentedStore) openTenant(ns string) (*tenantSegs, error) {
	t := &tenantSegs{
		ns:    ns,
		dir:   filepath.Join(s.root, tenantDir(ns)),
		idx:   make(map[string]rowRef),
		cache: make(map[string]*Result),
	}
	entries, err := os.ReadDir(t.dir)
	if os.IsNotExist(err) {
		return t, nil
	}
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		var id int
		if n, _ := fmt.Sscanf(e.Name(), "seg-%06d.jsonl", &id); n != 1 {
			continue
		}
		t.segs = append(t.segs, &segment{id: id, path: filepath.Join(t.dir, e.Name())})
	}
	sort.Slice(t.segs, func(i, j int) bool { return t.segs[i].id < t.segs[j].id })
	for _, seg := range t.segs {
		if err := t.indexSegment(seg); err != nil {
			return nil, fmt.Errorf("%s: %w", seg.path, err)
		}
	}
	return t, nil
}

// indexSegment folds one segment into the tenant index: from its footer
// when sealed, by full scan otherwise. Later segments supersede earlier
// ones, so replay in id order converges to the latest state even when a
// crashed compaction left stale lower-id segments behind.
func (t *tenantSegs) indexSegment(seg *segment) error {
	foot, err := readFooter(seg.path)
	if err != nil {
		return err
	}
	if foot != nil {
		seg.sealed = true
		t.applyNet(seg, foot.Live, foot.Dead)
		t.rows += len(foot.Live)
		return nil
	}
	live, dead, n, err := scanSegment(seg.path)
	if err != nil {
		return err
	}
	t.applyNet(seg, live, deadKeys(dead))
	t.rows += n
	return nil
}

// applyNet applies one segment's net key effect to the tenant index.
func (t *tenantSegs) applyNet(seg *segment, live map[string]int64, dead []string) {
	for _, k := range dead {
		delete(t.idx, k)
	}
	for k, off := range live {
		t.idx[k] = rowRef{seg: seg, off: off}
	}
}

func deadKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// readFooter returns the sealed segment's footer, or nil when the segment
// is unsealed (its last line is not a footer). The footer is found by
// reading the file's tail — footers are small, so 64 KiB is plenty.
func readFooter(path string) (*segFooter, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil
	}
	const tail = 64 << 10
	off := size - tail
	if off < 0 {
		off = 0
	}
	buf := make([]byte, size-off)
	if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
		return nil, err
	}
	// Last non-empty line of the tail window.
	buf = bytes.TrimRight(buf, "\n")
	i := bytes.LastIndexByte(buf, '\n')
	last := buf[i+1:]
	var probe segProbe
	if json.Unmarshal(last, &probe) != nil || probe.Footer == 0 {
		return nil, nil
	}
	var foot segFooter
	if err := json.Unmarshal(last, &foot); err != nil {
		return nil, err
	}
	return &foot, nil
}

// scanSegment reads every line of an unsealed segment and returns its net
// effect (live key offsets, net-deleted keys) plus its data row count.
func scanSegment(path string) (live map[string]int64, dead map[string]bool, rows int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, 0, err
	}
	defer f.Close()
	live = make(map[string]int64)
	dead = make(map[string]bool)
	rd := bufio.NewReaderSize(f, 64<<10)
	var off int64
	for {
		line, err := rd.ReadBytes('\n')
		if len(line) == 0 && err != nil {
			if err == io.EOF {
				break
			}
			return nil, nil, 0, err
		}
		n := int64(len(line))
		trimmed := bytes.TrimRight(line, "\n")
		if len(trimmed) > 0 {
			var probe segProbe
			if jerr := json.Unmarshal(trimmed, &probe); jerr != nil {
				return nil, nil, 0, fmt.Errorf("offset %d: %w", off, jerr)
			}
			switch {
			case probe.Footer != 0:
				// A footer mid-file cannot happen in a well-formed segment;
				// treat it as a seal marker and stop (crash-truncated tail).
			case probe.Del != "":
				delete(live, probe.Del)
				dead[probe.Del] = true
			case probe.Scenario != "":
				key, kerr := rowKey(probe)
				if kerr != nil {
					return nil, nil, 0, fmt.Errorf("offset %d: %w", off, kerr)
				}
				rows++
				live[key] = off
				delete(dead, key)
			default:
				return nil, nil, 0, fmt.Errorf("offset %d: unrecognized segment line", off)
			}
		}
		off += n
		if err == io.EOF {
			break
		}
	}
	return live, dead, rows, nil
}

// rowKey derives the canonical campaign key from a probed record line
// without decoding the full row: scenario ID plus the domain qualifier,
// exactly as Key builds it.
func rowKey(probe segProbe) (string, error) {
	sc, err := npb.ParseID(probe.Scenario)
	if err != nil {
		return "", err
	}
	if probe.Domain == "" {
		// Legacy unversioned rows are implicitly register-domain.
		return Key(sc, fault.Reg), nil
	}
	d, err := fault.ParseModel(probe.Domain)
	if err != nil {
		return "", err
	}
	return Key(sc, d), nil
}

// Put appends one record to the default namespace.
func (s *SegmentedStore) Put(r *Result) error { return s.put("", r) }

// Get reads one record from the default namespace.
func (s *SegmentedStore) Get(key string) (*Result, bool) { return s.get("", key) }

// Keys lists the default namespace's keys in sorted order.
func (s *SegmentedStore) Keys() []string { return s.keys("") }

// Query runs q over the default namespace.
func (s *SegmentedStore) Query(q Query) []*Result { return s.query("", q) }

// Delete tombstones one key in the default namespace; the row becomes
// superseded garbage until compaction drops it.
func (s *SegmentedStore) Delete(key string) error { return s.delete("", key) }

// Tenant returns the namespace-scoped Store view. The empty namespace is
// the store itself.
func (s *SegmentedStore) Tenant(ns string) Store {
	if ns == "" {
		return s
	}
	return &segTenantView{s: s, ns: ns}
}

// TenantNames lists the namespaces present on disk (the default namespace
// included only when it holds rows), sorted.
func (s *SegmentedStore) TenantNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for ns, t := range s.tenants {
		if ns == "" && len(t.idx) == 0 {
			continue
		}
		names = append(names, ns)
	}
	sort.Strings(names)
	return names
}

// segTenantView is the Store face of one named namespace.
type segTenantView struct {
	s  *SegmentedStore
	ns string
}

func (v *segTenantView) Put(r *Result) error            { return v.s.put(v.ns, r) }
func (v *segTenantView) Get(key string) (*Result, bool) { return v.s.get(v.ns, key) }
func (v *segTenantView) Keys() []string                 { return v.s.keys(v.ns) }
func (v *segTenantView) Query(q Query) []*Result        { return v.s.query(v.ns, q) }

// Delete tombstones one key in this namespace.
func (v *segTenantView) Delete(key string) error { return v.s.delete(v.ns, key) }

// tenant returns (creating on demand) the partition for ns. Caller holds
// s.mu.
func (s *SegmentedStore) tenantLocked(ns string) (*tenantSegs, error) {
	if !ValidTenant(ns) {
		return nil, fmt.Errorf("segmented store: invalid tenant namespace %q", ns)
	}
	t := s.tenants[ns]
	if t == nil {
		t = &tenantSegs{
			ns:    ns,
			dir:   filepath.Join(s.root, tenantDir(ns)),
			idx:   make(map[string]rowRef),
			cache: make(map[string]*Result),
		}
		s.tenants[ns] = t
	}
	return t, nil
}

// ensureActive opens (rotating first if needed) the tenant's active
// segment for appending. Caller holds s.mu.
func (s *SegmentedStore) ensureActive(t *tenantSegs) error {
	if t.active != nil {
		if t.activeLen < s.segMax {
			return nil
		}
		if err := s.sealLocked(t); err != nil {
			return err
		}
	}
	// Adopt an unsealed tail segment left by a previous process, so a
	// reopened store keeps appending instead of sprouting tiny segments. A
	// tail already at size is sealed in place and a fresh one opened.
	if n := len(t.segs); n > 0 && !t.segs[n-1].sealed {
		seg := t.segs[n-1]
		f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		alive, dead, _, err := scanSegment(seg.path)
		if err != nil {
			f.Close()
			return err
		}
		t.active, t.activeSeg, t.activeLen = f, seg, st.Size()
		t.activeLive, t.activeDead = alive, dead
		if st.Size() < s.segMax {
			return nil
		}
		if err := s.sealLocked(t); err != nil {
			return err
		}
	}
	if err := os.MkdirAll(t.dir, 0o755); err != nil {
		return err
	}
	id := 1
	if n := len(t.segs); n > 0 {
		id = t.segs[n-1].id + 1
	}
	seg := &segment{id: id, path: filepath.Join(t.dir, fmt.Sprintf("seg-%06d.jsonl", id))}
	f, err := os.OpenFile(seg.path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	t.segs = append(t.segs, seg)
	t.active, t.activeSeg, t.activeLen = f, seg, 0
	t.activeLive = make(map[string]int64)
	t.activeDead = make(map[string]bool)
	return nil
}

// sealLocked writes the active segment's footer, fsyncs and closes it.
// Caller holds s.mu.
func (s *SegmentedStore) sealLocked(t *tenantSegs) error {
	if t.active == nil {
		return nil
	}
	foot := segFooter{Footer: 1, Live: t.activeLive, Dead: deadKeys(t.activeDead)}
	if foot.Live == nil {
		foot.Live = map[string]int64{}
	}
	data, err := json.Marshal(&foot)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := t.active.Write(data); err != nil {
		return err
	}
	if err := t.active.Sync(); err != nil {
		return err
	}
	if err := t.active.Close(); err != nil {
		return err
	}
	t.activeSeg.sealed = true
	t.active, t.activeSeg, t.activeLen = nil, nil, 0
	t.activeLive, t.activeDead = nil, nil
	return nil
}

func (s *SegmentedStore) put(ns string, r *Result) error {
	key := r.Key()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("segmented store: closed")
	}
	t, err := s.tenantLocked(ns)
	if err != nil {
		return err
	}
	if _, dup := t.idx[key]; dup {
		return fmt.Errorf("campaign store: duplicate record for %q", key)
	}
	if err := s.ensureActive(t); err != nil {
		return fmt.Errorf("segmented store %s: %w", s.root, err)
	}
	off := t.activeLen
	var buf bytes.Buffer
	if err := writeRecord(&buf, r); err != nil {
		return err
	}
	if _, err := t.active.Write(buf.Bytes()); err != nil {
		// Best-effort truncate so a partial line never corrupts the segment.
		t.active.Truncate(off)
		return fmt.Errorf("segmented store %s: %w", s.root, err)
	}
	if s.fsync {
		if err := t.active.Sync(); err != nil {
			return fmt.Errorf("segmented store %s: %w", s.root, err)
		}
	}
	t.activeLen += int64(buf.Len())
	t.activeLive[key] = off
	delete(t.activeDead, key)
	t.idx[key] = rowRef{seg: t.activeSeg, off: off}
	t.cache[key] = r
	t.rows++
	s.maybeCompactLocked(t)
	return nil
}

func (s *SegmentedStore) delete(ns, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("segmented store: closed")
	}
	t, err := s.tenantLocked(ns)
	if err != nil {
		return err
	}
	if _, ok := t.idx[key]; !ok {
		return fmt.Errorf("segmented store: no record for %q", key)
	}
	if err := s.ensureActive(t); err != nil {
		return err
	}
	data, err := json.Marshal(struct {
		Del string `json:"del"`
	}{key})
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := t.active.Write(data); err != nil {
		t.active.Truncate(t.activeLen)
		return err
	}
	if s.fsync {
		if err := t.active.Sync(); err != nil {
			return err
		}
	}
	t.activeLen += int64(len(data))
	delete(t.activeLive, key)
	t.activeDead[key] = true
	delete(t.idx, key)
	delete(t.cache, key)
	s.maybeCompactLocked(t)
	return nil
}

func (s *SegmentedStore) get(ns, key string) (*Result, bool) {
	s.mu.Lock()
	t := s.tenants[ns]
	if t == nil {
		s.mu.Unlock()
		return nil, false
	}
	if r, ok := t.cache[key]; ok {
		s.mu.Unlock()
		return r, true
	}
	ref, ok := t.idx[key]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	r, err := loadRow(ref)
	if err != nil {
		return nil, false
	}
	s.mu.Lock()
	// The slot may have been deleted or re-put while unlocked; only cache
	// when the index still points at the row we read.
	if cur, ok2 := t.idx[key]; ok2 && cur == ref {
		t.cache[key] = r
	}
	s.mu.Unlock()
	return r, true
}

// loadRow reads and decodes one row at a segment offset.
func loadRow(ref rowRef) (*Result, error) {
	f, err := os.Open(ref.seg.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.Seek(ref.off, io.SeekStart); err != nil {
		return nil, err
	}
	rd := bufio.NewReaderSize(f, 64<<10)
	line, err := rd.ReadBytes('\n')
	if err != nil && err != io.EOF {
		return nil, err
	}
	return decodeRecordLine(bytes.TrimRight(line, "\n"))
}

func (s *SegmentedStore) keys(ns string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[ns]
	if t == nil {
		return nil
	}
	keys := make([]string, 0, len(t.idx))
	for k := range t.idx {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (s *SegmentedStore) query(ns string, q Query) []*Result {
	var out []*Result
	for _, k := range s.keys(ns) {
		// Identity predicates resolve from the key alone — no row load for
		// campaigns the query filters out.
		if sc, d, err := ParseKey(k); err == nil && !q.Matches(sc, d) {
			continue
		}
		if r, ok := s.get(ns, k); ok && q.MatchesResult(r) {
			out = append(out, r)
		}
	}
	return out
}

// Garbage returns the superseded (deleted or overwritten) row count of one
// namespace — the rows a compaction pass would drop.
func (s *SegmentedStore) Garbage(ns string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[ns]
	if t == nil {
		return 0
	}
	return t.rows - len(t.idx)
}

// Segments returns how many on-disk segments one namespace currently has.
func (s *SegmentedStore) Segments(ns string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[ns]
	if t == nil {
		return 0
	}
	return len(t.segs)
}

// Compact merges one namespace's segments into a single sealed segment
// holding only live rows, in sorted key order, and deletes the superseded
// segment files. Row bytes are copied verbatim from their source segments,
// so compaction can never perturb the byte-identity contract. The merged
// segment takes the highest existing id and is renamed into place
// atomically; stale lower-id segments left by a crash are superseded on
// the next open by replay order.
func (s *SegmentedStore) Compact(ns string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked(ns)
}

func (s *SegmentedStore) compactLocked(ns string) error {
	t := s.tenants[ns]
	if t == nil || len(t.segs) == 0 {
		return nil
	}
	if err := s.sealLocked(t); err != nil {
		return err
	}
	keys := make([]string, 0, len(t.idx))
	for k := range t.idx {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	last := t.segs[len(t.segs)-1]
	tmp := last.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	merged := &segment{id: last.id, path: last.path, sealed: true}
	foot := segFooter{Footer: 1, Live: make(map[string]int64, len(keys))}
	w := bufio.NewWriterSize(f, 256<<10)
	var off int64
	var rows int
	for _, k := range keys {
		line, err := rawRow(t.idx[k])
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("compact %s: %q: %w", t.dir, k, err)
		}
		if _, err := w.Write(line); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		foot.Live[k] = off
		off += int64(len(line))
		rows++
	}
	data, err := json.Marshal(&foot)
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, merged.path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Drop the superseded segments (all but the merged id). A crash partway
	// leaves stale lower-id files, which replay order renders harmless.
	for _, seg := range t.segs[:len(t.segs)-1] {
		os.Remove(seg.path)
	}
	t.segs = []*segment{merged}
	t.rows = rows
	newIdx := make(map[string]rowRef, rows)
	for k, o := range foot.Live {
		newIdx[k] = rowRef{seg: merged, off: o}
	}
	t.idx = newIdx
	return nil
}

// rawRow reads one row's raw line bytes (newline included) from its
// segment — compaction copies bytes, never re-marshals.
func rawRow(ref rowRef) ([]byte, error) {
	f, err := os.Open(ref.seg.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.Seek(ref.off, io.SeekStart); err != nil {
		return nil, err
	}
	rd := bufio.NewReaderSize(f, 64<<10)
	line, err := rd.ReadBytes('\n')
	if err == io.EOF && len(line) > 0 {
		line = append(line, '\n')
		err = nil
	}
	return line, err
}

// maybeCompactLocked queues a background compaction when the namespace's
// garbage crosses the CompactAfter threshold. Caller holds s.mu.
func (s *SegmentedStore) maybeCompactLocked(t *tenantSegs) {
	if s.compact <= 0 || s.compactQ == nil {
		return
	}
	if t.rows-len(t.idx) < s.compact {
		return
	}
	select {
	case s.compactQ <- t.ns:
	default: // a pass is already queued; it will observe the garbage
	}
}

// compactLoop is the background compaction worker.
func (s *SegmentedStore) compactLoop() {
	defer s.wg.Done()
	for ns := range s.compactQ {
		s.mu.Lock()
		if !s.closed {
			s.compactLocked(ns)
		}
		s.mu.Unlock()
	}
}

// Sync fsyncs every active segment — the graceful-shutdown barrier before
// a resume hint is printed.
func (s *SegmentedStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, t := range s.tenants {
		if t.active != nil {
			if err := t.active.Sync(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Close syncs and closes every active segment and stops the background
// compactor. The in-memory index stays readable; further writes fail.
func (s *SegmentedStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	q := s.compactQ
	s.compactQ = nil
	var first error
	for _, t := range s.tenants {
		if t.active != nil {
			if err := t.active.Sync(); err != nil && first == nil {
				first = err
			}
			if err := t.active.Close(); err != nil && first == nil {
				first = err
			}
			t.active = nil
		}
	}
	s.mu.Unlock()
	if q != nil {
		close(q)
		s.wg.Wait()
	}
	return first
}
