package campaign_test

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"serfi/internal/campaign"
	"serfi/internal/fault"
	"serfi/internal/fi"
	"serfi/internal/npb"
)

// openSeg opens a segmented store in a fresh temp dir and closes it with
// the test.
func openSeg(t *testing.T, opts ...campaign.SegStoreOption) (*campaign.SegmentedStore, string) {
	t.Helper()
	dir := t.TempDir() + "/segs"
	st, err := campaign.OpenSegmentedStore(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, dir
}

// segResult builds a distinct result per (app, domain) with recognizable
// content.
func segResult(app string, d fault.Model, faults int) *campaign.Result {
	r := &campaign.Result{
		Scenario: npb.Scenario{App: app, Mode: npb.Serial, ISA: "armv8", Cores: 1},
		Domain:   d,
		Faults:   faults,
		Seed:     5,
	}
	r.Counts[fi.Vanished] = faults
	return r
}

// TestSegmentedStoreRotatesAndReopens: a tiny rotation threshold forces
// multiple segments; a reopened store rebuilds the same index from footers
// (sealed segments) and tail scan (unsealed), and keeps appending.
func TestSegmentedStoreRotatesAndReopens(t *testing.T) {
	st, dir := openSeg(t, campaign.SegmentBytes(256))
	apps := []string{"IS", "MG", "EP", "CG", "FT", "BT"}
	for _, app := range apps {
		if err := st.Put(segResult(app, fault.Reg, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if n := st.Segments(""); n < 2 {
		t.Fatalf("256-byte segments after %d rows: %d segments, want several", len(apps), n)
	}
	wantKeys := st.Keys()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := campaign.OpenSegmentedStore(dir, campaign.SegmentBytes(256))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Keys(); !reflect.DeepEqual(got, wantKeys) {
		t.Fatalf("reopened keys = %v, want %v", got, wantKeys)
	}
	for _, k := range wantKeys {
		r, ok := re.Get(k)
		if !ok || r.Counts[fi.Vanished] != 2 {
			t.Fatalf("reopened Get(%q) = %+v %v", k, r, ok)
		}
	}
	// The reopened store appends into the adopted tail, and still rejects
	// duplicates across the open boundary.
	if err := re.Put(segResult("IS", fault.Reg, 2)); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Errorf("reopened store accepted a duplicate: %v", err)
	}
	if err := re.Put(segResult("LU", fault.Mem, 2)); err != nil {
		t.Fatal(err)
	}
	if _, ok := re.Get(segResult("LU", fault.Mem, 2).Key()); !ok {
		t.Error("row appended after reopen not readable")
	}
}

// TestSegmentedStoreCompactionEquivalence: Keys/Get/Query answers are
// identical before vs after compaction on a store carrying superseded
// duplicates (deleted-then-rewritten rows spread across segments), and the
// answers also match the plain backends given the same net content.
func TestSegmentedStoreCompactionEquivalence(t *testing.T) {
	st, dir := openSeg(t, campaign.SegmentBytes(256))

	// Build net content: six rows, two of which were superseded (deleted,
	// then re-put with different counts) and one net-deleted.
	for _, app := range []string{"IS", "MG", "EP", "CG", "FT", "BT"} {
		if err := st.Put(segResult(app, fault.Reg, 2)); err != nil {
			t.Fatal(err)
		}
	}
	for _, app := range []string{"IS", "MG"} {
		key := segResult(app, fault.Reg, 2).Key()
		if err := st.Delete(key); err != nil {
			t.Fatal(err)
		}
		if err := st.Put(segResult(app, fault.Reg, 7)); err != nil {
			t.Fatalf("re-put after delete: %v", err)
		}
	}
	dropped := segResult("BT", fault.Reg, 2).Key()
	if err := st.Delete(dropped); err != nil {
		t.Fatal(err)
	}
	if g := st.Garbage(""); g < 3 {
		t.Fatalf("garbage before compaction = %d, want >= 3 superseded rows", g)
	}

	snapshot := func(s campaign.Store) (keys []string, rows map[string]*campaign.Result, queried []string) {
		keys = s.Keys()
		rows = make(map[string]*campaign.Result)
		for _, k := range keys {
			r, ok := s.Get(k)
			if !ok {
				t.Fatalf("Get(%q) lost a listed key", k)
			}
			rows[k] = r
		}
		for _, r := range s.Query(campaign.Query{Domains: []fault.Model{fault.Reg}}) {
			queried = append(queried, r.Key())
		}
		return keys, rows, queried
	}
	beforeKeys, beforeRows, beforeQuery := snapshot(st)
	if contains := sort.SearchStrings(beforeKeys, dropped); contains < len(beforeKeys) && beforeKeys[contains] == dropped {
		t.Fatalf("net-deleted key %q still listed", dropped)
	}

	if err := st.Compact(""); err != nil {
		t.Fatal(err)
	}
	if n := st.Segments(""); n != 1 {
		t.Errorf("segments after compaction = %d, want 1", n)
	}
	if g := st.Garbage(""); g != 0 {
		t.Errorf("garbage after compaction = %d, want 0", g)
	}

	check := func(label string, s campaign.Store) {
		t.Helper()
		keys, rows, query := snapshot(s)
		if !reflect.DeepEqual(keys, beforeKeys) {
			t.Fatalf("%s: keys %v != pre-compaction %v", label, keys, beforeKeys)
		}
		if !reflect.DeepEqual(query, beforeQuery) {
			t.Fatalf("%s: query %v != pre-compaction %v", label, query, beforeQuery)
		}
		for _, k := range keys {
			if rows[k].Counts != beforeRows[k].Counts || rows[k].Faults != beforeRows[k].Faults {
				t.Fatalf("%s: row %q changed: %+v != %+v", label, k, rows[k], beforeRows[k])
			}
		}
	}
	check("after compaction", st)

	// A reopened store (index rebuilt from the merged segment's footer)
	// answers identically too.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := campaign.OpenSegmentedStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	check("after compaction + reopen", re)

	// The same net content pushed into every other backend answers the
	// same Keys/Get/Query — compaction equivalence across implementations.
	for name, plain := range storeImpls(t) {
		for _, app := range []string{"EP", "CG", "FT"} {
			if err := plain.Put(segResult(app, fault.Reg, 2)); err != nil {
				t.Fatal(err)
			}
		}
		for _, app := range []string{"IS", "MG"} {
			if err := plain.Put(segResult(app, fault.Reg, 7)); err != nil {
				t.Fatal(err)
			}
		}
		check("backend "+name, plain)
	}
}

// TestSegmentedStoreSyncDurability is the FileStore fsync audit applied to
// the segmented store: with SegmentSync every acknowledged Put is on disk,
// so reopening the directory WITHOUT closing sees every row.
func TestSegmentedStoreSyncDurability(t *testing.T) {
	dir := t.TempDir() + "/segs"
	st, err := campaign.OpenSegmentedStore(dir, campaign.SegmentSync())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(segResult("IS", fault.Reg, 3)); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(segResult("MG", fault.Mem, 3)); err != nil {
		t.Fatal(err)
	}
	re, err := campaign.OpenSegmentedStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := len(re.Keys()); got != 2 {
		t.Fatalf("reopened synced store holds %d campaigns, want 2", got)
	}
	if err := st.Put(segResult("IS", fault.Reg, 3)); err == nil {
		t.Error("synced store accepted a duplicate key")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTenantScopingIsolatesNamespaces: the same campaign key lives
// independently in each tenant namespace, on both TenantStore backends,
// and tenant partitions survive a segmented-store reopen.
func TestTenantScopingIsolatesNamespaces(t *testing.T) {
	seg, dir := openSeg(t)
	backends := map[string]campaign.TenantStore{
		"mem": campaign.NewMemStore(),
		"seg": seg,
	}
	for name, ts := range backends {
		a, b := ts.Tenant("alice"), ts.Tenant("bob")
		if err := a.Put(segResult("IS", fault.Reg, 1)); err != nil {
			t.Fatalf("%s: alice Put: %v", name, err)
		}
		if err := b.Put(segResult("IS", fault.Reg, 9)); err != nil {
			t.Fatalf("%s: bob Put of same key: %v", name, err)
		}
		ra, _ := a.Get("armv8/IS/SER-1")
		rb, _ := b.Get("armv8/IS/SER-1")
		if ra == nil || rb == nil || ra.Faults != 1 || rb.Faults != 9 {
			t.Fatalf("%s: tenant rows crossed: alice=%+v bob=%+v", name, ra, rb)
		}
		if n := len(ts.Keys()); n != 0 {
			t.Errorf("%s: default namespace sees %d tenant keys", name, n)
		}
		// Tenant("") is the store itself.
		if err := ts.Tenant("").Put(segResult("MG", fault.Reg, 1)); err != nil {
			t.Fatal(err)
		}
		if n := len(ts.Keys()); n != 1 {
			t.Errorf("%s: default namespace holds %d keys, want 1", name, n)
		}
	}

	// Segmented partitions are directories and survive reopen.
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := campaign.OpenSegmentedStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.TenantNames(); !reflect.DeepEqual(got, []string{"", "alice", "bob"}) {
		t.Fatalf("reopened tenants = %v", got)
	}
	r, ok := re.Tenant("bob").Get("armv8/IS/SER-1")
	if !ok || r.Faults != 9 {
		t.Fatalf("bob's row after reopen = %+v %v", r, ok)
	}

	// TenantView: "" works on any backend, named namespaces need a
	// TenantStore.
	fs, err := campaign.OpenFileStore(t.TempDir() + "/flat.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := campaign.TenantView(fs, ""); err != nil {
		t.Errorf("empty namespace on FileStore: %v", err)
	}
	if _, err := campaign.TenantView(fs, "alice"); err == nil {
		t.Error("named tenant on a flat FileStore accepted")
	}
	if v, err := campaign.TenantView(re, "alice"); err != nil || v == nil {
		t.Errorf("TenantView on segmented store: %v", err)
	}
}

// TestSegmentedStoreRowBytesMatchFileStore: the segmented store writes the
// exact canonical JSONL rows — stripping segment metadata (footers,
// tombstones) and sorting must yield the FileStore's bytes for the same
// results. This is the property that keeps distributed/queued runs
// byte-comparable to local engine databases.
func TestSegmentedStoreRowBytesMatchFileStore(t *testing.T) {
	results := []*campaign.Result{
		segResult("IS", fault.Reg, 4),
		segResult("MG", fault.IMem, 4),
		segResult("EP", fault.Burst, 4),
	}
	fsPath := t.TempDir() + "/flat.jsonl"
	fs, err := campaign.OpenFileStore(fsPath)
	if err != nil {
		t.Fatal(err)
	}
	seg, dir := openSeg(t, campaign.SegmentBytes(128)) // force rotation mid-set
	for _, r := range results {
		if err := fs.Put(r); err != nil {
			t.Fatal(err)
		}
		if err := seg.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := seg.Compact(""); err != nil { // compaction must not perturb bytes either
		t.Fatal(err)
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}

	flat, err := os.ReadFile(fsPath)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedDataLines(t, string(flat))
	got := sortedSegmentDataLines(t, filepath.Join(dir, "default"))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("segment rows != FileStore rows:\n got %q\nwant %q", got, want)
	}
}

// sortedDataLines splits a JSONL blob into sorted non-empty lines.
func sortedDataLines(t *testing.T, blob string) []string {
	t.Helper()
	var out []string
	for _, ln := range strings.Split(blob, "\n") {
		if ln != "" {
			out = append(out, ln)
		}
	}
	sort.Strings(out)
	return out
}

// sortedSegmentDataLines reads every segment in a partition directory and
// returns the sorted record rows, skipping footers and tombstones.
func sortedSegmentDataLines(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "seg-") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, ln := range strings.Split(string(data), "\n") {
			if ln == "" || strings.HasPrefix(ln, `{"footer"`) || strings.HasPrefix(ln, `{"del"`) {
				continue
			}
			out = append(out, ln)
		}
	}
	sort.Strings(out)
	return out
}

// TestSegmentedStoreBackgroundCompaction: with CompactAfter, accumulating
// superseded rows triggers a background merge without any explicit call.
func TestSegmentedStoreBackgroundCompaction(t *testing.T) {
	st, _ := openSeg(t, campaign.SegmentBytes(128), campaign.CompactAfter(3))
	for _, app := range []string{"IS", "MG", "EP", "CG"} {
		if err := st.Put(segResult(app, fault.Reg, 2)); err != nil {
			t.Fatal(err)
		}
	}
	for _, app := range []string{"IS", "MG", "EP"} {
		key := segResult(app, fault.Reg, 2).Key()
		if err := st.Delete(key); err != nil {
			t.Fatal(err)
		}
		if err := st.Put(segResult(app, fault.Reg, 8)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.Garbage("") > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never ran: garbage = %d", st.Garbage(""))
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, app := range []string{"IS", "MG", "EP"} {
		r, ok := st.Get(segResult(app, fault.Reg, 8).Key())
		if !ok || r.Faults != 8 {
			t.Fatalf("post-compaction row for %s = %+v %v", app, r, ok)
		}
	}
}

// TestValidTenant pins the namespace charset: path-safe tokens only.
func TestValidTenant(t *testing.T) {
	for _, ok := range []string{"", "alice", "team-7", "a.b_c", "X9"} {
		if !campaign.ValidTenant(ok) {
			t.Errorf("ValidTenant(%q) = false", ok)
		}
	}
	for _, bad := range []string{"a/b", "..", ".hidden", "no spaces", "ü", strings.Repeat("x", 65)} {
		if campaign.ValidTenant(bad) {
			t.Errorf("ValidTenant(%q) = true", bad)
		}
	}
}
