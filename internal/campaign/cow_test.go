package campaign_test

import (
	"bytes"
	"context"
	"testing"

	"serfi/internal/campaign"
	"serfi/internal/fault"
	"serfi/internal/fi"
	"serfi/internal/npb"
)

// runCompat executes one single-scenario campaign through an Engine built
// with the given extra options and returns its Result plus the exact JSONL
// bytes WriteDB would persist for it.
func runCompat(t *testing.T, sc npb.Scenario, seed int64, faults int, opts ...campaign.Option) (*campaign.Result, []byte) {
	t.Helper()
	eng := campaign.New(append([]campaign.Option{campaign.Faults(faults)}, opts...)...)
	jobs := []campaign.ScenarioJob{{Scenario: sc, Domain: fault.Reg, Seed: seed}}
	results, err := eng.RunMatrix(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0] == nil {
		t.Fatalf("got %d results", len(results))
	}
	var buf bytes.Buffer
	if err := campaign.WriteDB(&buf, results); err != nil {
		t.Fatal(err)
	}
	return results[0], buf.Bytes()
}

// TestCOWCheckpointsGoldenCompat is the PR's headline equivalence claim:
// campaigns at the PR 1/PR 2 pinned seeds run over copy-on-write delta
// checkpoints — in RAM and spilled to disk — produce byte-identical JSONL
// rows and identical prune/savings telemetry to the retained full-copy
// reference engine, and both still match the outcome distributions pinned
// before the fault-domain subsystem existed.
func TestCOWCheckpointsGoldenCompat(t *testing.T) {
	cases := []struct {
		name   string
		sc     npb.Scenario
		seed   int64
		faults int
		want   fi.Counts
	}{
		{"v8_seed99", npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1}, 99, 16, fi.Counts{7, 7, 0, 2, 0}},
		{"v7_seed2018", npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv7", Cores: 1}, 2018, 12, fi.Counts{9, 0, 1, 2, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cow, cowDB := runCompat(t, tc.sc, tc.seed, tc.faults)
			full, fullDB := runCompat(t, tc.sc, tc.seed, tc.faults, campaign.FullCopySnapshots())
			spill, spillDB := runCompat(t, tc.sc, tc.seed, tc.faults, campaign.CheckpointSpill(t.TempDir()))

			if cow.Counts != tc.want {
				t.Errorf("COW counts %v drifted from pinned golden %v", cow.Counts, tc.want)
			}
			if !bytes.Equal(cowDB, fullDB) {
				t.Errorf("COW JSONL differs from full-copy JSONL:\ncow:  %s\nfull: %s", cowDB, fullDB)
			}
			if !bytes.Equal(cowDB, spillDB) {
				t.Errorf("spilled JSONL differs from in-RAM JSONL:\ncow:   %s\nspill: %s", cowDB, spillDB)
			}
			// PruneStats equivalence, surfaced through the Result fields the
			// checkpoint telemetry feeds: identical runs must prune the same
			// runs and simulate the same instruction counts.
			for _, alt := range []*campaign.Result{full, spill} {
				if alt.PrunedRuns != cow.PrunedRuns ||
					alt.SimulatedInstr != cow.SimulatedInstr ||
					alt.FromResetInstr != cow.FromResetInstr {
					t.Errorf("telemetry diverged: cow {pruned %d sim %d reset %d} vs alt {pruned %d sim %d reset %d}",
						cow.PrunedRuns, cow.SimulatedInstr, cow.FromResetInstr,
						alt.PrunedRuns, alt.SimulatedInstr, alt.FromResetInstr)
				}
			}
			if cow.PrunedRuns == 0 {
				t.Error("no convergence pruning happened; the equivalence case lost its teeth")
			}
		})
	}
}
