package campaign_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"serfi/internal/campaign"
	"serfi/internal/fi"
	"serfi/internal/npb"
)

// TestEngineEventTaxonomy runs one campaign with an attached event stream
// and checks the full phase sequence arrives: ScenarioStarted, GoldenDone,
// one JobDone per injection job carrying the per-job spans, ScenarioDone
// with the result, and a terminal MatrixDone.
func TestEngineEventTaxonomy(t *testing.T) {
	sc := npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1}
	events := make(chan campaign.Event, 64)
	eng := campaign.New(
		campaign.Faults(10),
		campaign.JobSize(4),
		campaign.WithEvents(events),
	)
	results, err := eng.RunMatrix(context.Background(), []campaign.ScenarioJob{{Scenario: sc, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	close(events)

	var started, goldens, jobs, dones, matrix int
	var jobSpanSum float64
	var lastDone int
	for ev := range events {
		switch ev := ev.(type) {
		case campaign.ScenarioStarted:
			started++
			if ev.Scenario != sc || ev.Seed != 3 || len(ev.Domains) != 1 {
				t.Errorf("ScenarioStarted = %+v", ev)
			}
		case campaign.GoldenDone:
			goldens++
			if ev.Golden.Retired == 0 || ev.Checkpoints == 0 || ev.WallSec <= 0 {
				t.Errorf("GoldenDone = %+v", ev)
			}
			if ev.CheckpointBytes == 0 || ev.CheckpointSpilledBytes != 0 {
				t.Errorf("GoldenDone checkpoint telemetry = %+v (unspilled run)", ev)
			}
		case campaign.JobDone:
			jobs++
			jobSpanSum += ev.WallSec
			if ev.Total != 10 || ev.Hi <= ev.Lo || ev.Key() != sc.ID() {
				t.Errorf("JobDone = %+v", ev)
			}
			if ev.Done > lastDone {
				lastDone = ev.Done
			}
		case campaign.ScenarioDone:
			dones++
			if ev.Err != nil || ev.Result == nil || ev.Key != sc.ID() {
				t.Fatalf("ScenarioDone = %+v", ev)
			}
			if ev.Result.Counts.Total() != 10 {
				t.Errorf("result classified %d of 10", ev.Result.Counts.Total())
			}
		case campaign.MatrixDone:
			matrix++
			if ev.Completed != 1 || ev.Failed != 0 || ev.Skipped != 0 || ev.Err != nil {
				t.Errorf("MatrixDone = %+v", ev)
			}
		}
	}
	if started != 1 || goldens != 1 || dones != 1 || matrix != 1 {
		t.Errorf("event counts: started=%d goldens=%d dones=%d matrix=%d", started, goldens, dones, matrix)
	}
	if want := (10 + 3) / 4; jobs != want {
		t.Errorf("JobDone events = %d, want %d", jobs, want)
	}
	if lastDone != 10 {
		t.Errorf("JobDone progress peaked at %d, want 10", lastDone)
	}
	// The per-job spans are what ExclusiveCompute sums on top of the
	// golden phase.
	r := results[0]
	if r.JobWallSec <= 0 || r.ExclusiveCompute() < r.JobWallSec {
		t.Errorf("exclusive compute: job=%f excl=%f", r.JobWallSec, r.ExclusiveCompute())
	}
	if diff := r.JobWallSec - jobSpanSum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("JobWallSec %f != summed JobDone spans %f", r.JobWallSec, jobSpanSum)
	}
	if r.CampaignWallSec < r.GoldenWallSec {
		t.Errorf("campaign span %f below golden span %f", r.CampaignWallSec, r.GoldenWallSec)
	}
}

// TestEngineCancelThenResumeBitIdentical is the PR's acceptance property:
// a matrix cancelled mid-flight and resumed over the same store yields
// outcome counts bit-identical to an uninterrupted run at the same seed.
func TestEngineCancelThenResumeBitIdentical(t *testing.T) {
	jobs := []campaign.ScenarioJob{
		{Scenario: npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1}, Seed: 41},
		{Scenario: npb.Scenario{App: "EP", Mode: npb.Serial, ISA: "armv8", Cores: 1}, Seed: 42},
		{Scenario: npb.Scenario{App: "IS", Mode: npb.OMP, ISA: "armv8", Cores: 2}, Seed: 43},
	}
	opts := func(extra ...campaign.Option) []campaign.Option {
		return append([]campaign.Option{
			campaign.Faults(8),
			campaign.JobSize(2),
			// One worker and one open-scenario slot make the cancellation
			// point deterministic: the first campaign completes, the
			// feeder is still blocked on the slot for the second.
			campaign.Workers(1),
			campaign.MaxOpen(1),
		}, extra...)
	}

	// Reference: the uninterrupted matrix.
	ref, err := campaign.New(opts()...).RunMatrix(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: cancel as soon as the first campaign lands.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st := campaign.NewMemStore()
	events := make(chan campaign.Event, 64)
	consumed := make(chan struct{})
	go func() {
		defer close(consumed)
		for ev := range events {
			switch ev.(type) {
			case campaign.ScenarioDone:
				cancel()
			case campaign.MatrixDone:
				return
			}
		}
	}()
	partial, err := campaign.New(opts(campaign.WithStore(st), campaign.WithEvents(events))...).RunMatrix(ctx, jobs)
	<-consumed
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run error = %v, want context.Canceled", err)
	}
	done := len(st.Keys())
	if done == 0 || done == len(jobs) {
		t.Fatalf("cancelled run completed %d of %d campaigns, want a strict subset", done, len(jobs))
	}
	for i, r := range partial {
		if r == nil {
			continue // abandoned by cancellation
		}
		if r.Counts != ref[i].Counts {
			t.Errorf("partial result %d drifted: %v != %v", i, r.Counts, ref[i].Counts)
		}
	}

	// Resumed: the same store skips the recorded campaigns; the rest run
	// fresh and must land exactly on the reference.
	resumed, err := campaign.New(opts(campaign.WithStore(st))...).RunMatrix(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if resumed[i] == nil {
			t.Fatalf("resumed run left campaign %d unfinished", i)
		}
		if resumed[i].Counts != ref[i].Counts {
			t.Errorf("resume drifted: %s counts %v != %v",
				jobs[i].Key(), resumed[i].Counts, ref[i].Counts)
		}
		if resumed[i].Seed != ref[i].Seed || resumed[i].Faults != ref[i].Faults {
			t.Errorf("resume identity drifted: %+v vs %+v", resumed[i], ref[i])
		}
	}
	// Campaigns resumed fresh carry per-run records; they must match the
	// uninterrupted run per fault, not just in aggregate.
	for i := range jobs {
		if len(resumed[i].Runs) == 0 {
			continue // answered from the store, which keeps no run records
		}
		if !reflect.DeepEqual(resumed[i].Runs, ref[i].Runs) {
			t.Errorf("resume per-run records differ for %s", jobs[i].Key())
		}
	}
	if len(st.Keys()) != len(jobs) {
		t.Errorf("store holds %d campaigns after resume, want %d", len(st.Keys()), len(jobs))
	}
}

// TestEngineCancelledBeforeStart returns promptly with no results and
// ctx.Err() when the context is already cancelled.
func TestEngineCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := campaign.New(campaign.Faults(4))
	results, err := eng.RunMatrix(ctx, matrixJobs())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range results {
		if r != nil {
			t.Errorf("result %d produced despite pre-cancelled context", i)
		}
	}
}

// TestEngineStoreSkipMatchesLegacySkip: an engine with a pre-loaded
// FileStore behaves exactly like the legacy Skip map — stored campaigns
// come back in place, fresh ones append to the file.
func TestEngineFileStoreResume(t *testing.T) {
	jobs := matrixJobs()
	path := t.TempDir() + "/db.jsonl"

	st, err := campaign.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	eng := campaign.New(campaign.Faults(6), campaign.WithStore(st))
	first, err := eng.RunMatrix(context.Background(), jobs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := campaign.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := len(st2.Keys()); got != 1 {
		t.Fatalf("reopened store holds %d campaigns, want 1", got)
	}
	eng2 := campaign.New(campaign.Faults(6), campaign.WithStore(st2))
	all, err := eng2.RunMatrix(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if all[0].Counts != first[0].Counts {
		t.Errorf("stored campaign drifted on resume: %v != %v", all[0].Counts, first[0].Counts)
	}
	if len(all[0].Runs) != 0 {
		t.Errorf("store-answered campaign carries %d run records, want none", len(all[0].Runs))
	}
	if all[1] == nil || all[1].Counts.Total() != 6 {
		t.Error("fresh campaign did not complete alongside the skip")
	}
	if got := len(st2.Keys()); got != len(jobs) {
		t.Errorf("store holds %d campaigns, want %d", got, len(jobs))
	}
}

// TestEngineReusable runs two matrices through one Engine and checks the
// second run is unaffected by the first (no per-run state leaks).
func TestEngineReusable(t *testing.T) {
	eng := campaign.New(campaign.Faults(6), campaign.JobSize(3))
	sc := npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1}
	a, err := eng.RunMatrix(context.Background(), []campaign.ScenarioJob{{Scenario: sc, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.RunMatrix(context.Background(), []campaign.ScenarioJob{{Scenario: sc, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Counts != b[0].Counts || !reflect.DeepEqual(a[0].Runs, b[0].Runs) {
		t.Error("reused engine produced different results for the same job")
	}
}

// TestCollectorFoldsEvents drives a Collector by hand and checks the
// summary accessors and progress output.
func TestCollectorFoldsEvents(t *testing.T) {
	var buf bytes.Buffer
	col := campaign.NewCollector(&buf, 2)
	r := &campaign.Result{Scenario: npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1}, Faults: 4}
	r.Counts[fi.Vanished] = 4
	if col.Handle(campaign.ScenarioDone{Key: r.Key(), Result: r}) {
		t.Error("ScenarioDone reported as terminal")
	}
	if !col.Handle(campaign.MatrixDone{Completed: 1, Skipped: 1}) {
		t.Error("MatrixDone not reported as terminal")
	}
	if col.Completed() != 1 || col.Skipped() != 1 || col.Failed() != 0 || col.Err() != nil {
		t.Errorf("collector summary: completed=%d skipped=%d failed=%d err=%v",
			col.Completed(), col.Skipped(), col.Failed(), col.Err())
	}
	out := buf.String()
	for _, want := range []string{"[  1/  2]", "armv8/IS/SER-1", "V=100.0%", "save=off"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("progress line missing %q: %q", want, out)
		}
	}
	if got := col.Results(); len(got) != 1 || got[0] != r {
		t.Errorf("collector results = %v", got)
	}
}

// TestMergeJobSpans pins the interval merge behind ExclusiveCompute:
// overlapping fault ranges (a re-issued shard, a job re-run across a
// cancel/resume) count once, zero-length spans count nothing, and partial
// overlaps contribute only their uncovered share.
func TestMergeJobSpans(t *testing.T) {
	for _, tc := range []struct {
		name  string
		spans []campaign.JobSpan
		want  float64
	}{
		{"disjoint", []campaign.JobSpan{{Lo: 0, Hi: 4, WallSec: 2}, {Lo: 4, Hi: 8, WallSec: 3}}, 5},
		{"duplicate", []campaign.JobSpan{{Lo: 0, Hi: 4, WallSec: 2}, {Lo: 0, Hi: 4, WallSec: 9}}, 2},
		{"zero-length", []campaign.JobSpan{{Lo: 3, Hi: 3, WallSec: 7}, {Lo: 0, Hi: 2, WallSec: 1}}, 1},
		{"half-overlap", []campaign.JobSpan{{Lo: 0, Hi: 4, WallSec: 4}, {Lo: 2, Hi: 6, WallSec: 4}}, 6},
		{"unsorted-hole", []campaign.JobSpan{{Lo: 8, Hi: 12, WallSec: 4}, {Lo: 0, Hi: 4, WallSec: 4}, {Lo: 2, Hi: 10, WallSec: 8}}, 12},
		{"empty", nil, 0},
	} {
		if got := campaign.MergeJobSpans(tc.spans); got != tc.want {
			t.Errorf("%s: MergeJobSpans = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestResumeComputeNotDoubleCounted is the cancel/resume pin for
// ExclusiveCompute: campaigns assembled by the resumed run carry job spans
// that tile the fault list exactly once (no overlap from the work the
// cancelled run had already executed and threw away), so the merged
// compute equals the plain span sum and every fault is attributed once.
func TestResumeComputeNotDoubleCounted(t *testing.T) {
	jobs := []campaign.ScenarioJob{
		{Scenario: npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1}, Seed: 51},
		{Scenario: npb.Scenario{App: "EP", Mode: npb.Serial, ISA: "armv8", Cores: 1}, Seed: 52},
	}
	const faults = 8
	opts := func(extra ...campaign.Option) []campaign.Option {
		return append([]campaign.Option{
			campaign.Faults(faults),
			campaign.JobSize(2),
			campaign.Workers(1),
			campaign.MaxOpen(1),
		}, extra...)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st := campaign.NewMemStore()
	events := make(chan campaign.Event, 64)
	consumed := make(chan struct{})
	go func() {
		defer close(consumed)
		for ev := range events {
			switch ev.(type) {
			case campaign.ScenarioDone:
				cancel()
			case campaign.MatrixDone:
				return
			}
		}
	}()
	if _, err := campaign.New(opts(campaign.WithStore(st), campaign.WithEvents(events))...).RunMatrix(ctx, jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run error = %v, want context.Canceled", err)
	}
	<-consumed
	resumed, err := campaign.New(opts(campaign.WithStore(st))...).RunMatrix(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	fresh := 0
	for i, r := range resumed {
		if r == nil {
			t.Fatalf("campaign %d unfinished after resume", i)
		}
		if len(r.JobSpans) == 0 {
			continue // answered from the store: spans are not persisted
		}
		fresh++
		covered := 0
		for j, sp := range r.JobSpans {
			covered += sp.Hi - sp.Lo
			if j > 0 && sp.Lo < r.JobSpans[j-1].Hi {
				t.Errorf("campaign %d: span %d overlaps predecessor: %+v", i, j, r.JobSpans)
			}
		}
		if covered != faults {
			t.Errorf("campaign %d: spans cover %d of %d faults: %+v", i, covered, faults, r.JobSpans)
		}
		sum := 0.0
		for _, sp := range r.JobSpans {
			sum += sp.WallSec
		}
		if got, want := r.ExclusiveCompute(), r.GoldenWallSec+sum; got != want {
			t.Errorf("campaign %d: ExclusiveCompute = %v, want %v (disjoint spans)", i, got, want)
		}
	}
	if fresh == 0 {
		t.Fatal("resume ran no campaign fresh; the cancel fired too late to pin anything")
	}
}

// TestCheckpointTelemetryReported pins the checkpoint telemetry surfaces on
// a known small scenario: a spilled engine run reports the default
// checkpoint count with all payload on disk, the CheckpointTag progress
// column renders every mode, and the Collector prints one golden line per
// scenario carrying the tag.
func TestCheckpointTelemetryReported(t *testing.T) {
	sc := npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1}
	events := make(chan campaign.Event, 64)
	eng := campaign.New(
		campaign.Faults(2),
		campaign.CheckpointSpill(t.TempDir()),
		campaign.WithEvents(events),
	)
	if _, err := eng.RunMatrix(context.Background(), []campaign.ScenarioJob{{Scenario: sc, Seed: 3}}); err != nil {
		t.Fatal(err)
	}
	close(events)
	var golden *campaign.GoldenDone
	for ev := range events {
		if g, ok := ev.(campaign.GoldenDone); ok {
			golden = &g
		}
	}
	if golden == nil {
		t.Fatal("no GoldenDone event")
	}
	if golden.Checkpoints != fi.DefaultCheckpoints {
		t.Errorf("checkpoints = %d, want the default %d", golden.Checkpoints, fi.DefaultCheckpoints)
	}
	if golden.CheckpointBytes != 0 {
		t.Errorf("spilled run still reports %d in-RAM bytes", golden.CheckpointBytes)
	}
	if golden.CheckpointSpilledBytes == 0 {
		t.Error("spilled run reports no on-disk payload")
	}
	tag := golden.CheckpointTag()
	for _, want := range []string{"ckpt=8", "spill="} {
		if !bytes.Contains([]byte(tag), []byte(want)) {
			t.Errorf("CheckpointTag %q missing %q", tag, want)
		}
	}
	if off := (campaign.GoldenDone{}).CheckpointTag(); off != "ckpt=off" {
		t.Errorf("zero-checkpoint tag = %q", off)
	}

	// The Collector prints the tag on its per-scenario golden line.
	var buf bytes.Buffer
	col := campaign.NewCollector(&buf, 1)
	col.Handle(*golden)
	line := buf.String()
	for _, want := range []string{"armv8/IS/SER-1", "golden", "ckpt=8", "spill="} {
		if !bytes.Contains([]byte(line), []byte(want)) {
			t.Errorf("collector golden line missing %q: %q", want, line)
		}
	}
}

// TestEngineCancelResumeRoundTripsRecordedRuns: under -record-runs, a
// cancelled matrix persists its per-fault rows as v4 records; reopening the
// file store reloads them, and the resumed matrix — part answered from
// disk, part run fresh — lands on the uninterrupted run's per-fault tuples
// and outcomes exactly.
func TestEngineCancelResumeRoundTripsRecordedRuns(t *testing.T) {
	jobs := []campaign.ScenarioJob{
		{Scenario: npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1}, Seed: 61},
		{Scenario: npb.Scenario{App: "EP", Mode: npb.Serial, ISA: "armv8", Cores: 1}, Seed: 62},
		{Scenario: npb.Scenario{App: "IS", Mode: npb.OMP, ISA: "armv8", Cores: 2}, Seed: 63},
	}
	opts := func(extra ...campaign.Option) []campaign.Option {
		return append([]campaign.Option{
			campaign.Faults(8),
			campaign.JobSize(2),
			campaign.Workers(1),
			campaign.MaxOpen(1),
			campaign.RecordRuns(),
			campaign.TraceProp(),
		}, extra...)
	}

	ref, err := campaign.New(opts()...).RunMatrix(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	path := t.TempDir() + "/resume.jsonl"
	st, err := campaign.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := make(chan campaign.Event, 64)
	consumed := make(chan struct{})
	go func() {
		defer close(consumed)
		for ev := range events {
			switch ev.(type) {
			case campaign.ScenarioDone:
				cancel()
			case campaign.MatrixDone:
				return
			}
		}
	}()
	_, err = campaign.New(opts(campaign.WithStore(st), campaign.WithEvents(events))...).RunMatrix(ctx, jobs)
	<-consumed
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run error = %v, want context.Canceled", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk: the recorded campaigns must come back as v4 rows
	// with their per-fault records intact.
	re, err := campaign.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	done := len(re.Keys())
	if done == 0 || done == len(jobs) {
		t.Fatalf("cancelled run recorded %d of %d campaigns, want a strict subset", done, len(jobs))
	}
	for _, k := range re.Keys() {
		r, ok := re.Get(k)
		if !ok || !r.RecordRuns || len(r.Runs) != 8 {
			t.Fatalf("reloaded %s lost its per-run records: %+v", k, r)
		}
	}

	resumed, err := campaign.New(opts(campaign.WithStore(re))...).RunMatrix(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if resumed[i] == nil || len(resumed[i].Runs) != len(ref[i].Runs) {
			t.Fatalf("resumed %s carries %d runs, want %d", jobs[i].Key(), len(resumed[i].Runs), len(ref[i].Runs))
		}
		// Store-answered campaigns carry compact rows (fault tuple +
		// outcome); compare exactly those axes against the uninterrupted
		// reference.
		for j := range ref[i].Runs {
			if resumed[i].Runs[j].Fault != ref[i].Runs[j].Fault ||
				resumed[i].Runs[j].Outcome != ref[i].Runs[j].Outcome {
				t.Errorf("%s run %d drifted: %+v vs %+v",
					jobs[i].Key(), j, resumed[i].Runs[j], ref[i].Runs[j])
			}
			refTraced := j < len(ref[i].Traces) && ref[i].Traces[j] != nil
			gotTraced := j < len(resumed[i].Traces) && resumed[i].Traces[j] != nil
			if refTraced != gotTraced {
				t.Errorf("%s run %d trace presence drifted", jobs[i].Key(), j)
			} else if refTraced {
				if resumed[i].Traces[j].Escape != ref[i].Traces[j].Escape {
					t.Errorf("%s run %d escape drifted", jobs[i].Key(), j)
				}
			}
		}
		if resumed[i].Counts != ref[i].Counts {
			t.Errorf("%s counts drifted: %v != %v", jobs[i].Key(), resumed[i].Counts, ref[i].Counts)
		}
	}
}
