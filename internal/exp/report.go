package exp

import (
	"fmt"
	"strings"
	"time"

	"serfi/internal/fault"
	"serfi/internal/fi"
	"serfi/internal/npb"
)

// shapeCheck is one paper-vs-measured claim evaluated on the matrix.
type shapeCheck struct {
	ID       string
	Claim    string
	Measured string
	Holds    bool
}

// checks evaluates the paper's qualitative findings against the matrix.
func checks(m *Matrix) []shapeCheck {
	var out []shapeCheck
	add := func(id, claim, measured string, holds bool) {
		out = append(out, shapeCheck{id, claim, measured, holds})
	}
	// The paper's own claims are evaluated on its fault model: the
	// register-domain rows. Cross-domain checks select explicitly.
	regRows := m.filter(func(npb.Scenario) bool { return true })

	// Table 1 shape: v7 executes far more instructions than v8.
	var s7, s8 float64
	var n7, n8 int
	for _, r := range m.filter(func(sc npb.Scenario) bool { return sc.ISA == "armv7" }) {
		s7 += float64(r.Golden.Retired)
		n7++
	}
	for _, r := range m.filter(func(sc npb.Scenario) bool { return sc.ISA == "armv8" }) {
		s8 += float64(r.Golden.Retired)
		n8++
	}
	ratio := 0.0
	if n7 > 0 && n8 > 0 && s8 > 0 {
		ratio = (s7 / float64(n7)) / (s8 / float64(n8))
	}
	add("T1", "ARMv7 executes many times more instructions than ARMv8 (paper avg ~25x, from software FP)",
		fmt.Sprintf("measured average ratio %.1fx", ratio), ratio > 3)

	// §4.1.3 shape: branch share higher under MPI than OMP on both ISAs.
	d := Dataset(m)
	group := func(isa, mode string) float64 {
		mean, _, _ := d.MeanStd("branch_pct", func(name string) bool {
			return strings.HasPrefix(name, isa) && strings.Contains(name, mode)
		})
		return mean
	}
	b7m, b7o := group("armv7", "MPI"), group("armv7", "OMP")
	b8m, b8o := group("armv8", "MPI"), group("armv8", "OMP")
	add("S413", "mean branch share: MPI above OMP on both ISAs (paper 19.2/14.1 on v7, 17.7/12.0 on v8)",
		fmt.Sprintf("v7 %.1f%%/%.1f%%, v8 %.1f%%/%.1f%%", b7m, b7o, b8m, b8o),
		b7m > b7o && b8m > b8o)

	// Table 2 shape: IS Hang rate and the F*B index rise together with
	// core count in the MPI macro scenarios.
	fbMono := func(mode npb.Mode, isa string) bool {
		var fb []float64
		for _, cores := range []int{1, 2, 4} {
			r := m.Get(npb.Scenario{App: "IS", Mode: mode, ISA: isa, Cores: cores})
			if r == nil {
				return false
			}
			fb = append(fb, r.Features.FBIndex)
		}
		return fb[2] > fb[0]
	}
	add("T2", "the function-calls x branches index grows with MPI core count (IS case study)",
		fmt.Sprintf("v7 growth=%v v8 growth=%v", fbMono(npb.MPI, "armv7"), fbMono(npb.MPI, "armv8")),
		fbMono(npb.MPI, "armv7") && fbMono(npb.MPI, "armv8"))

	// Tables 3/4 shape: memory-instruction share correlates with UT rate.
	corrs := d.Correlate("rate_ut", "rate_vanished", "rate_ona", "rate_omm", "rate_hang", "masking")
	var memCorr float64
	for _, c := range corrs {
		if c.Feature == "mem_pct" {
			memCorr = c.Spearman
		}
	}
	add("T3/T4", "memory-transaction share correlates positively with UT occurrence",
		fmt.Sprintf("Spearman(mem_pct, UT rate) = %.2f over %d scenarios", memCorr, len(m.Order)),
		memCorr > 0)

	// §4.2.2 shape: MPI maskings beat OMP in most pairs.
	pairs, wins := 0, 0
	for _, isaName := range []string{"armv7", "armv8"} {
		for _, app := range npb.Apps() {
			if !app.HasMPI || !app.HasOMP {
				continue
			}
			for _, cores := range []int{1, 2, 4} {
				if app.MPISquare && cores == 2 {
					continue
				}
				a := m.Get(npb.Scenario{App: app.Name, Mode: npb.MPI, ISA: isaName, Cores: cores})
				o := m.Get(npb.Scenario{App: app.Name, Mode: npb.OMP, ISA: isaName, Cores: cores})
				if a == nil || o == nil {
					continue
				}
				pairs++
				if a.Counts.Masking() >= o.Counts.Masking() {
					wins++
				}
			}
		}
	}
	add("S422a", "MPI shows the higher masking rate in most MPI/OMP pairs (paper: 38 of 44)",
		fmt.Sprintf("MPI wins %d of %d", wins, pairs), pairs > 0 && wins*2 > pairs)

	// §4.2.2 shape: MPI balances instructions across cores better.
	var mi, oi []float64
	for _, r := range m.filter(func(sc npb.Scenario) bool { return sc.Mode == npb.MPI && sc.Cores > 1 }) {
		mi = append(mi, r.Features.CoreImbalance)
	}
	for _, r := range m.filter(func(sc npb.Scenario) bool { return sc.Mode == npb.OMP && sc.Cores > 1 }) {
		oi = append(oi, r.Features.CoreImbalance)
	}
	avg := func(v []float64) float64 {
		if len(v) == 0 {
			return 0
		}
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	add("S422b", "MPI distributes instructions across cores more evenly than OMP (paper ~4% vs up to 16%)",
		fmt.Sprintf("mean imbalance MPI %.1f%% vs OMP %.1f%%", avg(mi), avg(oi)),
		len(mi) > 0 && len(oi) > 0 && avg(mi) < avg(oi))

	// §4.2.2 shape: vulnerability window of the API stays bounded.
	maxWin := 0.0
	for _, r := range regRows {
		if r.Features.APIWindow > maxWin {
			maxWin = r.Features.APIWindow
		}
	}
	add("S422c", "the parallelization API's vulnerability window stays limited (paper: < 23% worst case)",
		fmt.Sprintf("max window %.1f%%", maxWin), maxWin < 60)

	// Masking dominance: most uniform faults are masked (paper figures
	// show Vanished as the largest class almost everywhere).
	dominated := 0
	total := 0
	for _, r := range regRows {
		total++
		if r.Counts.Rate(fi.Vanished)+r.Counts.Rate(fi.ONA) > 0.4 {
			dominated++
		}
	}
	add("F2/F3", "masked outcomes (Vanished+ONA) form the largest share in most scenarios",
		fmt.Sprintf("masking > 40%% in %d of %d scenarios", dominated, total),
		total > 0 && dominated*3 > total*2)

	// Cross-domain shape (DomainTable): faults landing in memory behave
	// qualitatively differently from register faults (Cho et al.). Two
	// invariants of the model: a corrupted instruction word persists in
	// read-only text, so IMem faults can never be classified Vanished; and
	// uniform data-word strikes land mostly in dead memory, so the Mem
	// domain masks at least as much as the register file.
	if m.HasDomain(fault.IMem) || m.HasDomain(fault.Mem) {
		domainCounts := func(d fault.Model) fi.Counts {
			var agg fi.Counts
			for _, sc := range m.Order {
				if r := m.GetDomain(sc, d); r != nil {
					for o := fi.Outcome(0); o < fi.NumOutcomes; o++ {
						agg[o] += r.Counts[o]
					}
				}
			}
			return agg
		}
		if m.HasDomain(fault.IMem) {
			im := domainCounts(fault.IMem)
			add("D1", "instruction-word faults never Vanish (the corrupted word persists in read-only text)",
				fmt.Sprintf("IMem Vanished = %d of %d runs", im[fi.Vanished], im.Total()),
				im.Total() > 0 && im[fi.Vanished] == 0)
		}
		// D2 compares against register campaigns, so it is only evaluable
		// when the matrix ran both domains.
		if m.HasDomain(fault.Mem) && m.HasDomain(fault.Reg) {
			mc, rc := domainCounts(fault.Mem), domainCounts(fault.Reg)
			add("D2", "uniform data-word strikes mask at least as often as register strikes (most RAM words are dead)",
				fmt.Sprintf("Mem masking %.1f%% vs Reg %.1f%%", 100*mc.Masking(), 100*rc.Masking()),
				mc.Total() > 0 && rc.Total() > 0 && mc.Masking() >= rc.Masking())
		}
	}
	return out
}

// propTraced reports whether any campaign in the matrix carries a
// propagation fold (the report only prints PropTable for traced runs).
func propTraced(m *Matrix) bool {
	for _, r := range m.Results {
		if r.Prop != nil {
			return true
		}
	}
	return false
}

// Report assembles the complete EXPERIMENTS.md content.
func Report(m *Matrix, elapsed time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Experiments: paper vs. measured\n\n")
	fmt.Fprintf(&b, "Reproduction of \"Extensive Evaluation of Programming Models and ISAs Impact on\n")
	fmt.Fprintf(&b, "Multicore Soft Error Reliability\" (DAC 2018) on the serfi simulator.\n\n")
	fmt.Fprintf(&b, "- scenarios: %d (the paper's 130)\n", len(m.Order))
	doms := make([]string, len(m.Domains))
	for i, d := range m.Domains {
		doms[i] = d.String()
	}
	fmt.Fprintf(&b, "- fault domains: %s (the paper evaluates reg; see the Domain Table for the rest)\n",
		strings.Join(doms, ", "))
	fmt.Fprintf(&b, "- faults per scenario: %d (paper: 8000 per scenario on a 5000-core cluster;\n", m.Cfg.Faults)
	fmt.Fprintf(&b, "  scale with `cmd/experiments -n` / `SERFI_FAULTS`)\n")
	fmt.Fprintf(&b, "- base seed: %d\n", m.Cfg.Seed)
	fmt.Fprintf(&b, "- total wall time: %v\n\n", elapsed.Round(time.Second))

	fmt.Fprintf(&b, "## Shape checks (who wins / how it moves)\n\n")
	fmt.Fprintf(&b, "| id | paper claim | measured | holds |\n|---|---|---|---|\n")
	for _, c := range checks(m) {
		mark := "yes"
		if !c.Holds {
			mark = "NO"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", c.ID, c.Claim, c.Measured, mark)
	}
	section := func(title, body string) {
		fmt.Fprintf(&b, "\n## %s\n\n```\n%s```\n", title, body)
	}
	section("Figure 1 (intro trends)", Figure1())
	section("Table 1 (workload summary)", Table1(m))
	section("Table 2 (Hang vs F*B index, IS)", Table2(m))
	section("Table 3 (ARMv7 memory transactions)", Table3(m))
	section("Table 4 (ARMv8 memory transactions)", Table4(m))
	section("Domain Table (outcome distribution by fault domain)", DomainTable(m))
	if propTraced(m) {
		section("Propagation Table (escape class and latency by fault domain)", PropTable(m))
	}
	section("Figure 2 (ARMv7 distributions + mismatch)", Figure2(m))
	section("Figure 3 (ARMv8 distributions + mismatch)", Figure3(m))
	section("Section 4.1.3 macro statistics", MacroStats(m))
	section("Section 4.2.2 vulnerability window", VulnWindow(m))
	section("Cross-layer mining (Section 3.4)", MineReport(m))
	return b.String()
}
