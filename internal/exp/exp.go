// Package exp regenerates every table and figure of the paper's evaluation
// from fresh simulations: Table 1 (workload summary), Table 2 (Hang vs the
// function-calls-x-branches index), Tables 3/4 (memory transactions vs
// outcome classes), Figures 2/3 (per-scenario outcome distributions and
// MPI-vs-OMP mismatch) plus the narrative statistics of §4.1.3 and §4.2.2
// and the intro trends of Figure 1. Absolute values reflect the miniature
// workloads; EXPERIMENTS.md records paper-vs-measured shape checks.
package exp

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"serfi/internal/campaign"
	"serfi/internal/fault"
	"serfi/internal/fi"
	"serfi/internal/mining"
	"serfi/internal/npb"
	"serfi/internal/prop"
	"serfi/internal/sens"
	"serfi/internal/soc"
)

// Config scales the experiment campaigns.
type Config struct {
	Faults   int
	Seed     int64
	Progress io.Writer
	// Workers bounds the scheduler's host worker pool; 0 = GOMAXPROCS.
	Workers int
	// Snapshots is the per-scenario checkpoint count (0 = default on,
	// negative = from-reset mode); see campaign.Snapshots.
	Snapshots int
	// Domains lists the fault models each scenario runs under (nil: the
	// paper's register domain only). The paper's tables and figures always
	// format the register campaigns; extra domains feed DomainTable.
	Domains []fault.Model
	// TraceProp turns on the propagation tracer: every unmasked injection
	// is re-run against a golden twin to localize the first architectural
	// divergence and classify its escape; the folds feed PropTable.
	TraceProp bool
	// RecordRuns persists the per-fault rows of every campaign (v4 store
	// records): the fault tuple, outcome and escape/latency when traced.
	// The rows feed SensTable and the `serfi sens` attribution engine.
	RecordRuns bool
	// Store, when set, receives streamed scenario records as they complete
	// and supplies already-recorded campaigns for resume (matching
	// campaigns are not re-executed). It takes precedence over DB/Skip.
	Store campaign.Store
	// DB, when set, receives streamed scenario records as they complete.
	// Legacy: prefer Store.
	DB io.Writer
	// Skip holds already-completed results from an interrupted matrix
	// (campaign.LoadDB); matching campaigns are not re-executed.
	// Legacy: prefer Store.
	Skip map[string]*campaign.Result
}

// DefaultConfig uses a small per-scenario fault count suitable for a
// laptop-scale reproduction (the paper used 8000 on a 5000-core cluster).
func DefaultConfig() Config {
	return Config{Faults: 24, Seed: 2018}
}

// Matrix holds one campaign result per (scenario, fault domain) — the full
// evaluation run every artefact formats from. The paper's tables and
// figures read the register-domain results; DomainTable compares domains.
type Matrix struct {
	Cfg     Config
	Order   []npb.Scenario
	Domains []fault.Model
	Results map[string]*campaign.Result // keyed by campaign.Key
}

// RunMatrix executes the 130-scenario campaign on the shared matrix
// scheduler, interleaving golden runs and injection jobs across scenarios.
func RunMatrix(cfg Config) (*Matrix, error) {
	return RunMatrixContext(context.Background(), cfg)
}

// RunMatrixContext is RunMatrix with cancellation: the campaign engine
// stops at job granularity when ctx is cancelled and the error is
// ctx.Err(). Campaigns already streamed to cfg.Store stay durable, so a
// rerun over the same store resumes where the cancelled run stopped.
func RunMatrixContext(ctx context.Context, cfg Config) (*Matrix, error) {
	return runScenarios(ctx, cfg, func(npb.Scenario) bool { return true })
}

// RunSubset executes campaigns only for the scenarios that pass keep
// (used by per-table benchmarks that don't need the full matrix). Scenario
// seeds depend on the position in the full scenario list (and are shared
// across domains), so a subset run reproduces the exact per-campaign
// results of the full matrix.
func RunSubset(cfg Config, keep func(npb.Scenario) bool) (*Matrix, error) {
	return RunSubsetContext(context.Background(), cfg, keep)
}

// RunSubsetContext is RunSubset with cancellation; see RunMatrixContext.
func RunSubsetContext(ctx context.Context, cfg Config, keep func(npb.Scenario) bool) (*Matrix, error) {
	return runScenarios(ctx, cfg, keep)
}

// runScenarios assembles jobs, runs the campaign engine and indexes the
// results into a Matrix.
func runScenarios(ctx context.Context, cfg Config, keep func(npb.Scenario) bool) (*Matrix, error) {
	domains := cfg.Domains
	if len(domains) == 0 {
		domains = []fault.Model{fault.Reg}
	}
	m := &Matrix{Cfg: cfg, Domains: domains, Results: make(map[string]*campaign.Result)}
	for _, sc := range npb.Scenarios() {
		if keep(sc) {
			m.Order = append(m.Order, sc)
		}
	}
	st := cfg.Store
	if st == nil && (cfg.DB != nil || cfg.Skip != nil) {
		st = campaign.StreamStore(cfg.DB, cfg.Skip)
	}
	opts := []campaign.Option{
		campaign.Faults(cfg.Faults),
		campaign.Workers(cfg.Workers),
		campaign.Snapshots(cfg.Snapshots),
		campaign.Models(domains...),
		campaign.WithStore(st),
	}
	if cfg.TraceProp {
		opts = append(opts, campaign.TraceProp())
	}
	if cfg.RecordRuns {
		opts = append(opts, campaign.RecordRuns())
	}
	// Live progress rides the typed event stream: one Collector goroutine
	// prints per-campaign lines until the engine's MatrixDone.
	var done chan struct{}
	if cfg.Progress != nil {
		events := make(chan campaign.Event, 64)
		col := campaign.NewCollector(cfg.Progress, len(m.Order)*len(domains))
		opts = append(opts, campaign.WithEvents(events))
		done = make(chan struct{})
		go func() {
			defer close(done)
			col.Consume(events)
		}()
	}
	eng := campaign.New(opts...)
	jobs := eng.JobsFor(m.Order, cfg.Seed)
	results, err := eng.RunMatrix(ctx, jobs)
	if done != nil {
		<-done
	}
	for i, r := range results {
		if r != nil {
			m.Results[jobs[i].Key()] = r
		}
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// MatrixFromStore assembles a Matrix from already-recorded campaigns
// without running anything — the offline path of the report generators.
// Scenario order follows the npb catalog, domains the fault.Models order,
// and the matrix's Cfg.Faults/Seed report what the rows were actually
// recorded with (not what the caller's cfg says); only artefacts over
// stored columns are meaningful (wall-clock spans are never persisted, and
// per-run records reload only from campaigns recorded with RecordRuns —
// v4 rows).
func MatrixFromStore(st campaign.Store, cfg Config) *Matrix {
	m := &Matrix{Cfg: cfg, Results: make(map[string]*campaign.Result)}
	for _, r := range st.Query(campaign.Query{}) {
		m.Results[r.Key()] = r
	}
	haveDomain := make(map[fault.Model]bool)
	scale := false
	for i, sc := range npb.Scenarios() {
		inMatrix := false
		for _, d := range fault.Models() {
			r, ok := m.Results[campaign.Key(sc, d)]
			if !ok {
				continue
			}
			inMatrix = true
			haveDomain[d] = true
			if !scale {
				// The recorded scale (uniform across rows — resume
				// validation refuses mixed databases): fault count as
				// stored, base seed back-derived from the catalog
				// position per the JobsFor convention.
				m.Cfg.Faults = r.Faults
				m.Cfg.Seed = r.Seed - int64(i)
				scale = true
			}
		}
		if inMatrix {
			m.Order = append(m.Order, sc)
		}
	}
	for _, d := range fault.Models() {
		if haveDomain[d] {
			m.Domains = append(m.Domains, d)
		}
	}
	return m
}

// Get returns a scenario's register-domain result (nil when absent) — the
// rows the paper's own tables and figures are built from.
func (m *Matrix) Get(sc npb.Scenario) *campaign.Result {
	return m.Results[campaign.Key(sc, fault.Reg)]
}

// GetDomain returns a scenario's result under one fault domain.
func (m *Matrix) GetDomain(sc npb.Scenario, d fault.Model) *campaign.Result {
	return m.Results[campaign.Key(sc, d)]
}

// All returns every campaign result in deterministic order (scenario order,
// domains within a scenario in configured order).
func (m *Matrix) All() []*campaign.Result {
	var out []*campaign.Result
	for _, sc := range m.Order {
		for _, d := range m.Domains {
			if r := m.GetDomain(sc, d); r != nil {
				out = append(out, r)
			}
		}
	}
	return out
}

// HasDomain reports whether the matrix ran campaigns under the model.
func (m *Matrix) HasDomain(d fault.Model) bool {
	for _, have := range m.Domains {
		if have == d {
			return true
		}
	}
	return false
}

// filter selects register-domain results in matrix order.
func (m *Matrix) filter(keep func(npb.Scenario) bool) []*campaign.Result {
	var out []*campaign.Result
	for _, sc := range m.Order {
		if keep(sc) {
			if r := m.Get(sc); r != nil {
				out = append(out, r)
			}
		}
	}
	return out
}

// Table1 reproduces the NPB workload summary: smaller/average/larger
// single-run simulation time, fault-campaign time and executed instructions
// per ISA, plus campaign totals.
func Table1(m *Matrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: NPB workload summary (miniature classes; paper shape: ARMv7 >> ARMv8)\n")
	fmt.Fprintf(&b, "%-28s %-6s %12s %12s %12s\n", "Description", "ISA", "Smaller", "Average", "Larger")
	type agg struct {
		min, max, sum float64
		n             int
	}
	update := func(a *agg, v float64) {
		if a.n == 0 || v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
		a.sum += v
		a.n++
	}
	for _, row := range []struct {
		name string
		get  func(*campaign.Result) float64
		fmtv func(float64) string
	}{
		{"Simulation Time Single Run", func(r *campaign.Result) float64 { return r.GoldenWallSec },
			func(v float64) string { return fmt.Sprintf("%.3fs", v) }},
		{"Fault Campaign Run", func(r *campaign.Result) float64 { return r.CampaignWallSec },
			func(v float64) string { return fmt.Sprintf("%.1fs", v) }},
		{"Executed Instructions", func(r *campaign.Result) float64 { return float64(r.Golden.Retired) },
			func(v float64) string { return fmt.Sprintf("%.3g", v) }},
	} {
		for _, isaName := range []string{"armv8", "armv7"} {
			var a agg
			for _, r := range m.filter(func(sc npb.Scenario) bool { return sc.ISA == isaName }) {
				update(&a, row.get(r))
			}
			if a.n == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-28s %-6s %12s %12s %12s\n", row.name, isaName,
				row.fmtv(a.min), row.fmtv(a.sum/float64(a.n)), row.fmtv(a.max))
		}
	}
	// The campaign total sums ExclusiveCompute, not CampaignWallSec:
	// campaigns overlap on the shared worker pool, so their open-to-close
	// spans double-count pool time when added.
	for _, isaName := range []string{"armv8", "armv7"} {
		total := 0.0
		for _, r := range m.filter(func(sc npb.Scenario) bool { return sc.ISA == isaName }) {
			total += r.ExclusiveCompute()
		}
		fmt.Fprintf(&b, "%-28s %-6s %12s\n", "Total Fault Campaign (compute)", isaName, fmt.Sprintf("%.0fs", total))
	}
	// The paper's headline ratio: average v7 instructions / average v8.
	var s7, s8 float64
	var n7, n8 int
	for _, r := range m.filter(func(sc npb.Scenario) bool { return sc.ISA == "armv7" }) {
		s7 += float64(r.Golden.Retired)
		n7++
	}
	for _, r := range m.filter(func(sc npb.Scenario) bool { return sc.ISA == "armv8" }) {
		s8 += float64(r.Golden.Retired)
		n8++
	}
	if n7 > 0 && n8 > 0 && s8 > 0 {
		fmt.Fprintf(&b, "ARMv7/ARMv8 average executed-instruction ratio: %.1fx (paper: ~25x from software FP)\n",
			(s7/float64(n7))/(s8/float64(n8)))
	}
	return b.String()
}

// Table2 reproduces the Hang-vs-F*B-index case study on IS.
func Table2(m *Matrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Hang occurrence vs normalized function-calls x branches (IS)\n")
	fmt.Fprintf(&b, "%-12s %-10s %10s %10s %10s\n", "Scenario", "Param", "Single", "Dual", "Quad")
	for _, group := range []struct {
		label string
		mode  npb.Mode
		isa   string
	}{
		{"IS MPI V7", npb.MPI, "armv7"},
		{"IS OMP V7", npb.OMP, "armv7"},
		{"IS MPI V8", npb.MPI, "armv8"},
		{"IS OMP V8", npb.OMP, "armv8"},
	} {
		var hang, branches, calls, fb [3]float64
		for i, cores := range []int{1, 2, 4} {
			r := m.Get(npb.Scenario{App: "IS", Mode: group.mode, ISA: group.isa, Cores: cores})
			if r == nil {
				continue
			}
			hang[i] = 100 * r.Counts.Rate(fi.Hang)
			branches[i] = r.Features.Branches
			calls[i] = r.Features.Calls
			fb[i] = r.Features.FBIndex
		}
		norm := fb[0]
		if norm == 0 {
			norm = 1
		}
		fmt.Fprintf(&b, "%-12s %-10s %10.3f %10.3f %10.3f\n", group.label, "Hang (%)", hang[0], hang[1], hang[2])
		fmt.Fprintf(&b, "%-12s %-10s %10.3g %10.3g %10.3g\n", "", "Branches", branches[0], branches[1], branches[2])
		fmt.Fprintf(&b, "%-12s %-10s %10.3g %10.3g %10.3g\n", "", "F. Calls", calls[0], calls[1], calls[2])
		fmt.Fprintf(&b, "%-12s %-10s %10.3f %10.3f %10.3f\n", "", "Index F*B", fb[0]/norm, fb[1]/norm, fb[2]/norm)
	}
	return b.String()
}

// memTable shares the Table 3/4 layout.
func memTable(m *Matrix, title string, rows []npb.Scenario, labels []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-4s %-14s %12s %6s %10s %8s\n",
		"#", "Scenario", "V+OMM+ONA(%)", "UT(%)", "MemInst(%)", "RD/WR")
	for i, sc := range rows {
		r := m.Get(sc)
		if r == nil {
			continue
		}
		masked := 100 * (r.Counts.Rate(fi.Vanished) + r.Counts.Rate(fi.OMM) + r.Counts.Rate(fi.ONA))
		fmt.Fprintf(&b, "%-4s %-14s %12.1f %6.1f %10.1f %8.2f\n",
			labels[i], fmt.Sprintf("%s %sx%d", sc.App, sc.Mode, sc.Cores),
			masked, 100*r.Counts.Rate(fi.UT), r.Features.MemInstrPct, r.Features.RdWrRatio)
	}
	return b.String()
}

// Table3 reproduces the ARMv7 memory-transaction table (MG/IS MPI).
func Table3(m *Matrix) string {
	rows := []npb.Scenario{
		{App: "MG", Mode: npb.MPI, ISA: "armv7", Cores: 1},
		{App: "MG", Mode: npb.MPI, ISA: "armv7", Cores: 2},
		{App: "MG", Mode: npb.MPI, ISA: "armv7", Cores: 4},
		{App: "IS", Mode: npb.MPI, ISA: "armv7", Cores: 1},
		{App: "IS", Mode: npb.MPI, ISA: "armv7", Cores: 2},
		{App: "IS", Mode: npb.MPI, ISA: "armv7", Cores: 4},
	}
	return memTable(m, "Table 3: ARMv7 memory transactions and soft-error classes",
		rows, []string{"1", "2", "3", "4", "5", "6"})
}

// Table4 reproduces the ARMv8 memory-transaction table (LU/SP OMP, FT MPI).
func Table4(m *Matrix) string {
	rows := []npb.Scenario{
		{App: "LU", Mode: npb.OMP, ISA: "armv8", Cores: 1},
		{App: "LU", Mode: npb.OMP, ISA: "armv8", Cores: 2},
		{App: "LU", Mode: npb.OMP, ISA: "armv8", Cores: 4},
		{App: "SP", Mode: npb.OMP, ISA: "armv8", Cores: 1},
		{App: "SP", Mode: npb.OMP, ISA: "armv8", Cores: 2},
		{App: "SP", Mode: npb.OMP, ISA: "armv8", Cores: 4},
		{App: "FT", Mode: npb.MPI, ISA: "armv8", Cores: 1},
		{App: "FT", Mode: npb.MPI, ISA: "armv8", Cores: 2},
		{App: "FT", Mode: npb.MPI, ISA: "armv8", Cores: 4},
	}
	return memTable(m, "Table 4: ARMv8 memory transactions and soft-error classes",
		rows, []string{"A", "B", "C", "D", "E", "F", "G", "H", "I"})
}

// DomainTable is the register-vs-memory counterpart of Tables 3/4: the
// outcome distribution aggregated per fault domain per ISA. The paper
// injects into architectural registers only; this table extends its
// methodology along the fault-space axis (uncore/memory-path faults after
// Cho et al., instruction-word strikes, multi-bit register bursts) so the
// cross-domain movement of the outcome classes becomes visible.
func DomainTable(m *Matrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Domain Table: outcome distribution by fault domain (register vs memory fault spaces)\n")
	fmt.Fprintf(&b, "%-6s %-6s %5s %7s %6s %6s %6s %6s %6s %9s\n",
		"ISA", "Domain", "scen", "faults", "V%", "ONA%", "OMM%", "UT%", "Hang%", "Masking%")
	for _, isaName := range []string{"armv7", "armv8"} {
		for _, d := range m.Domains {
			var agg fi.Counts
			scen := 0
			for _, sc := range m.Order {
				if sc.ISA != isaName {
					continue
				}
				r := m.GetDomain(sc, d)
				if r == nil {
					continue
				}
				scen++
				for o := fi.Outcome(0); o < fi.NumOutcomes; o++ {
					agg[o] += r.Counts[o]
				}
			}
			if scen == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-6s %-6s %5d %7d %6.1f %6.1f %6.1f %6.1f %6.1f %9.1f\n",
				isaName, d, scen, agg.Total(),
				100*agg.Rate(fi.Vanished), 100*agg.Rate(fi.ONA), 100*agg.Rate(fi.OMM),
				100*agg.Rate(fi.UT), 100*agg.Rate(fi.Hang), 100*agg.Masking())
		}
	}
	if len(m.Domains) == 1 {
		fmt.Fprintf(&b, "(single-domain matrix; run with -faultmodel all to compare fault spaces)\n")
	}
	return b.String()
}

// PropTable formats the propagation-tracing fold: per ISA per domain, how
// many unmasked injections were traced, the escape-class mix (severity-max
// per trace), the cross-core escape rate and the median latency from
// injection to first architectural corruption. It extends the paper's
// outcome taxonomy with the propagation axis: not just whether a fault
// escaped, but how far and how fast.
func PropTable(m *Matrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Propagation Table: escape class and latency-to-first-corruption by fault domain\n")
	fmt.Fprintf(&b, "%-6s %-10s %7s", "ISA", "Domain", "traced")
	for c := prop.Class(0); c < prop.NumClasses; c++ {
		fmt.Fprintf(&b, " %7s", c)
	}
	fmt.Fprintf(&b, " %7s %10s %10s\n", "xcore%", "med(inst)", "med(cyc)")
	traced := 0
	for _, isaName := range []string{"armv7", "armv8"} {
		for _, d := range m.Domains {
			var agg prop.Summary
			for _, sc := range m.Order {
				if sc.ISA != isaName {
					continue
				}
				if r := m.GetDomain(sc, d); r != nil {
					agg.Merge(r.Prop)
				}
			}
			if agg.Traced == 0 {
				continue
			}
			traced += agg.Traced
			fmt.Fprintf(&b, "%-6s %-10s %7d", isaName, d, agg.Traced)
			for c := prop.Class(0); c < prop.NumClasses; c++ {
				fmt.Fprintf(&b, " %7d", agg.EscapeCount(c))
			}
			mi, okI := agg.MedianInstr()
			mc, okC := agg.MedianCyc()
			instr, cyc := "-", "-"
			if okI {
				instr = fmt.Sprintf("%d", mi)
			}
			if okC {
				cyc = fmt.Sprintf("%d", mc)
			}
			fmt.Fprintf(&b, " %7.1f %10s %10s\n", 100*agg.XCoreRate(), instr, cyc)
		}
	}
	if traced == 0 {
		fmt.Fprintf(&b, "(no propagation traces recorded; run with -trace-prop)\n")
	}
	return b.String()
}

// SensTable formats the register-level sensitivity slice of the recorded
// per-fault rows: per ISA, the architecturally named registers ranked by
// unmasked-outcome rate with 95% Wilson intervals, aggregated over every
// recorded register-file and burst campaign in the matrix. The full
// function/page/cache attribution (which needs the rebuilt image and a
// residency walk) lives in `serfi sens`; this artefact stays cheap enough
// to regenerate from a stored matrix alone.
func SensTable(m *Matrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sensitivity Table: per-register unmasked rate over recorded campaigns (95%% Wilson CI)\n")
	fmt.Fprintf(&b, "%-6s %-8s %7s %9s %8s %13s\n", "ISA", "register", "n", "unmasked", "rate", "95% CI")
	const top = 10
	rows := 0
	for _, isaName := range []string{"armv7", "armv8"} {
		cfg, err := soc.Config(isaName, 1)
		if err != nil {
			continue
		}
		feat := cfg.ISA.Feat()
		t := sens.NewTable(isaName)
		for _, d := range m.Domains {
			if d != fault.Reg && d != fault.Burst {
				continue
			}
			for _, sc := range m.Order {
				if sc.ISA != isaName {
					continue
				}
				r := m.GetDomain(sc, d)
				if r == nil || len(r.Runs) == 0 {
					continue
				}
				for _, run := range r.Runs {
					t.Cell(fault.RegisterName(feat, run.Fault.Reg)).Counts.Add(run.Outcome)
				}
			}
		}
		cells := t.Cells()
		for i, c := range cells {
			if i >= top {
				fmt.Fprintf(&b, "%-6s ... %d more registers\n", isaName, len(cells)-top)
				break
			}
			lo, hi := c.CI()
			fmt.Fprintf(&b, "%-6s %-8s %7d %9d %7.1f%% %5.1f-%5.1f%%\n",
				isaName, c.Key, c.N(), c.Unmasked(), 100*c.Rate(), 100*lo, 100*hi)
			rows++
		}
	}
	if rows == 0 {
		fmt.Fprintf(&b, "(no recorded per-fault rows; run with -record-runs)\n")
	}
	return b.String()
}

// bar renders a proportional ASCII segment bar for one outcome class mix.
func bar(c fi.Counts, width int) string {
	chars := []byte{'V', 'o', 'M', 'U', 'H'}
	var sb strings.Builder
	for o := fi.Outcome(0); o < fi.NumOutcomes; o++ {
		n := int(c.Rate(o)*float64(width) + 0.5)
		for i := 0; i < n; i++ {
			sb.WriteByte(chars[o])
		}
	}
	s := sb.String()
	if len(s) > width {
		s = s[:width]
	}
	return s + strings.Repeat(".", width-len(s))
}

// figure renders Figures 2a/2b or 3a/3b: outcome distributions per app for
// SER plus one parallel mode at 1/2/4 cores, and the (c) mismatch panel.
func figure(m *Matrix, isaName, figName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: NPB fault injections on %s (V=Vanished o=ONA M=OMM U=UT H=Hang)\n", figName, isaName)
	panel := func(mode npb.Mode, label string) {
		fmt.Fprintf(&b, "(%s) %s benchmarks\n", label, mode)
		for _, app := range npb.Apps() {
			var has bool
			if mode == npb.MPI {
				has = app.HasMPI
			} else {
				has = app.HasOMP
			}
			if !has {
				continue
			}
			variants := []npb.Scenario{{App: app.Name, Mode: npb.Serial, ISA: isaName, Cores: 1}}
			for _, cc := range []int{1, 2, 4} {
				if app.MPISquare && mode == npb.MPI && cc == 2 {
					continue
				}
				variants = append(variants, npb.Scenario{App: app.Name, Mode: mode, ISA: isaName, Cores: cc})
			}
			for _, sc := range variants {
				r := m.Get(sc)
				if r == nil {
					continue
				}
				tag := "SER-1"
				if sc.Mode != npb.Serial {
					tag = fmt.Sprintf("%s-%d", sc.Mode, sc.Cores)
				}
				fmt.Fprintf(&b, "  %-3s %-6s |%s| %s\n", app.Name, tag, bar(r.Counts, 50), r.Counts)
			}
		}
	}
	panel(npb.MPI, "a")
	panel(npb.OMP, "b")
	// (c): MPI-vs-OMP mismatch for apps that have both.
	fmt.Fprintf(&b, "(c) Mismatch MPI vs OMP (sum of absolute per-class differences, %%)\n")
	for _, app := range npb.Apps() {
		if !app.HasMPI || !app.HasOMP {
			continue
		}
		for _, cc := range []int{1, 2, 4} {
			if app.MPISquare && cc == 2 {
				continue
			}
			a := m.Get(npb.Scenario{App: app.Name, Mode: npb.MPI, ISA: isaName, Cores: cc})
			o := m.Get(npb.Scenario{App: app.Name, Mode: npb.OMP, ISA: isaName, Cores: cc})
			if a == nil || o == nil {
				continue
			}
			fmt.Fprintf(&b, "  %-3s cores=%d mismatch=%6.2f%%\n", app.Name, cc, fi.Mismatch(a.Counts, o.Counts))
		}
	}
	return b.String()
}

// Figure2 is the ARMv7 panel set.
func Figure2(m *Matrix) string { return figure(m, "armv7", "Figure 2") }

// Figure3 is the ARMv8 panel set.
func Figure3(m *Matrix) string { return figure(m, "armv8", "Figure 3") }

// MacroStats reproduces the §4.1.3 narrative: mean branch share and sigma
// for the four macro scenarios.
func MacroStats(m *Matrix) string {
	d := Dataset(m)
	var b strings.Builder
	fmt.Fprintf(&b, "Macro-scenario branch composition (paper: MPI V7 19.24%% / OMP V7 14.08%% / MPI V8 17.65%% / OMP V8 12.01%%)\n")
	for _, g := range []struct{ label, isa, mode string }{
		{"MPI V7", "armv7", "MPI"},
		{"OMP V7", "armv7", "OMP"},
		{"MPI V8", "armv8", "MPI"},
		{"OMP V8", "armv8", "OMP"},
	} {
		mean, std, n := d.MeanStd("branch_pct", func(name string) bool {
			return strings.HasPrefix(name, g.isa) && strings.Contains(name, g.mode)
		})
		fmt.Fprintf(&b, "  %-7s mean=%6.2f%% sigma=%5.2f (n=%d)\n", g.label, mean, std, n)
	}
	return b.String()
}

// VulnWindow reproduces §4.2.2: masking-rate comparisons between MPI and
// OMP pairs, the per-core balance difference and the runtime-library
// vulnerability window bound.
func VulnWindow(m *Matrix) string {
	var b strings.Builder
	pairs, mpiWins := 0, 0
	var maxWin float64
	var mpiImb, ompImb []float64
	for _, isaName := range []string{"armv7", "armv8"} {
		for _, app := range npb.Apps() {
			if !app.HasMPI || !app.HasOMP {
				continue
			}
			for _, cores := range []int{1, 2, 4} {
				if app.MPISquare && cores == 2 {
					continue
				}
				a := m.Get(npb.Scenario{App: app.Name, Mode: npb.MPI, ISA: isaName, Cores: cores})
				o := m.Get(npb.Scenario{App: app.Name, Mode: npb.OMP, ISA: isaName, Cores: cores})
				if a == nil || o == nil {
					continue
				}
				pairs++
				if a.Counts.Masking() >= o.Counts.Masking() {
					mpiWins++
				}
				if w := a.Features.APIWindow; w > maxWin {
					maxWin = w
				}
				if w := o.Features.APIWindow; w > maxWin {
					maxWin = w
				}
				if cores > 1 {
					mpiImb = append(mpiImb, a.Features.CoreImbalance)
					ompImb = append(ompImb, o.Features.CoreImbalance)
				}
			}
		}
	}
	avg := func(v []float64) float64 {
		if len(v) == 0 {
			return 0
		}
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	fmt.Fprintf(&b, "Vulnerability window / masking (paper: MPI higher masking in 38 of 44 pairs; API window < 23%%)\n")
	fmt.Fprintf(&b, "  MPI masking >= OMP in %d of %d comparable scenarios\n", mpiWins, pairs)
	fmt.Fprintf(&b, "  max parallelization-API vulnerability window: %.1f%%\n", maxWin)
	fmt.Fprintf(&b, "  mean per-core instruction imbalance: MPI %.1f%%, OMP %.1f%% (paper: ~4%% vs up to 16%%)\n",
		avg(mpiImb), avg(ompImb))
	return b.String()
}

// Dataset assembles the mining table from a matrix (the §3.4 database).
func Dataset(m *Matrix) *mining.DataSet {
	d := mining.NewDataSet()
	for _, sc := range m.Order {
		r := m.Get(sc)
		if r == nil {
			continue
		}
		row := r.Features.Map()
		row["rate_vanished"] = 100 * r.Counts.Rate(fi.Vanished)
		row["rate_ona"] = 100 * r.Counts.Rate(fi.ONA)
		row["rate_omm"] = 100 * r.Counts.Rate(fi.OMM)
		row["rate_ut"] = 100 * r.Counts.Rate(fi.UT)
		row["rate_hang"] = 100 * r.Counts.Rate(fi.Hang)
		row["masking"] = 100 * r.Counts.Masking()
		d.AddRow(sc.ID(), row)
	}
	return d
}

// MineReport runs the cross-layer correlation study against the UT and
// Hang rates (the §4 analyses).
func MineReport(m *Matrix) string {
	d := Dataset(m)
	exclude := []string{"rate_vanished", "rate_ona", "rate_omm", "rate_ut", "rate_hang", "masking"}
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-layer mining: features vs UT rate (paper: memory-instruction share drives UTs)\n")
	fmt.Fprintf(&b, "%s\n", mining.Report(d.Correlate("rate_ut", exclude...), 6))
	fmt.Fprintf(&b, "Cross-layer mining: features vs Hang rate (paper: calls x branches index tracks Hangs)\n")
	fmt.Fprintf(&b, "%s", mining.Report(d.Correlate("rate_hang", exclude...), 6))
	return b.String()
}

// trendRow is one Figure 1 data point.
type trendRow struct {
	Year        int
	Transistors float64
	Cores       int
	NodeNM      float64
	Label       string
}

// figure1Data is the embedded historical dataset behind the intro figure.
var figure1Data = []trendRow{
	{1971, 2.3e3, 1, 10000, "Intel 4004"},
	{1978, 2.9e4, 1, 3000, "Intel 8086"},
	{1989, 1.2e6, 1, 1000, "Intel 80486"},
	{1999, 2.2e7, 1, 250, "AMD K7"},
	{2007, 7.9e8, 2, 65, "POWER6"},
	{2010, 1.0e9, 16, 40, "SPARC T3"},
	{2015, 1.0e10, 32, 20, "SPARC M7"},
	{2017, 7.2e9, 48, 14, "Xeon E7-8894"},
	{2017, 4.8e9, 8, 14, "Ryzen"},
	{2018, 6.9e9, 64, 10, "10nm-class"},
}

// Figure1 renders the processor-evolution trends (intro figure).
func Figure1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: processor evolution 1970-2018 (embedded dataset)\n")
	fmt.Fprintf(&b, "%-6s %-14s %14s %6s %8s\n", "Year", "Processor", "Transistors", "Cores", "Node(nm)")
	rows := append([]trendRow(nil), figure1Data...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Year < rows[j].Year })
	for _, r := range rows {
		logT := 0
		for t := r.Transistors; t >= 10; t /= 10 {
			logT++
		}
		fmt.Fprintf(&b, "%-6d %-14s %14.2g %6d %8.0f |%s\n",
			r.Year, r.Label, r.Transistors, r.Cores, r.NodeNM, strings.Repeat("#", logT))
	}
	fmt.Fprintf(&b, "(bar length = log10 of transistor count)\n")
	return b.String()
}
