package exp

import (
	"strings"
	"testing"
	"time"

	"serfi/internal/fault"
	"serfi/internal/npb"
)

// smallMatrix runs a cheap subset once for all formatting tests.
var cached *Matrix

func smallMatrix(t *testing.T) *Matrix {
	t.Helper()
	if cached != nil {
		return cached
	}
	cfg := Config{Faults: 3, Seed: 7}
	m, err := RunSubset(cfg, func(sc npb.Scenario) bool {
		// IS on armv8 everywhere (cheap); a slice of armv7 IS for the
		// v7 panels; the Table 3/4 scenarios at 1 core.
		if sc.App == "IS" && sc.ISA == "armv8" {
			return true
		}
		if sc.App == "IS" && sc.ISA == "armv7" && sc.Cores == 1 {
			return true
		}
		if sc.Cores != 1 || sc.ISA != "armv8" {
			return sc.App == "MG" && sc.ISA == "armv7" && sc.Mode == npb.MPI && sc.Cores == 1
		}
		switch sc.App {
		case "MG", "LU", "SP", "FT":
			return true
		}
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	cached = m
	return m
}

func TestTable1Renders(t *testing.T) {
	s := Table1(smallMatrix(t))
	for _, want := range []string{"Simulation Time Single Run", "Executed Instructions", "armv7", "armv8"} {
		if !strings.Contains(s, want) {
			t.Errorf("table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	s := Table2(smallMatrix(t))
	for _, want := range []string{"IS MPI V7", "IS OMP V8", "Index F*B", "Hang"} {
		if !strings.Contains(s, want) {
			t.Errorf("table 2 missing %q:\n%s", want, s)
		}
	}
}

func TestTables34Render(t *testing.T) {
	m := smallMatrix(t)
	s3 := Table3(m)
	if !strings.Contains(s3, "MG MPIx1") || !strings.Contains(s3, "RD/WR") {
		t.Errorf("table 3:\n%s", s3)
	}
	s4 := Table4(m)
	if !strings.Contains(s4, "LU OMPx1") || !strings.Contains(s4, "FT MPIx1") {
		t.Errorf("table 4:\n%s", s4)
	}
}

func TestFiguresRender(t *testing.T) {
	m := smallMatrix(t)
	f2 := Figure2(m)
	if !strings.Contains(f2, "MPI benchmarks") || !strings.Contains(f2, "Mismatch") {
		t.Errorf("figure 2:\n%s", f2)
	}
	if !strings.Contains(f2, "IS") {
		t.Error("figure 2 missing IS rows")
	}
	f3 := Figure3(m)
	if !strings.Contains(f3, "armv8") {
		t.Errorf("figure 3:\n%s", f3)
	}
}

func TestFigure1Static(t *testing.T) {
	s := Figure1()
	for _, want := range []string{"Intel 4004", "SPARC M7", "Cores", "Node"} {
		if !strings.Contains(s, want) {
			t.Errorf("figure 1 missing %q", want)
		}
	}
}

func TestDatasetAndMining(t *testing.T) {
	m := smallMatrix(t)
	d := Dataset(m)
	if len(d.Rows) != len(m.Order) {
		t.Fatalf("dataset rows = %d, want %d", len(d.Rows), len(m.Order))
	}
	if _, ok := d.Column("rate_ut"); !ok {
		t.Fatal("dataset missing outcome columns")
	}
	if s := MineReport(m); !strings.Contains(s, "spearman") {
		t.Errorf("mining report:\n%s", s)
	}
}

func TestReportAssembles(t *testing.T) {
	m := smallMatrix(t)
	r := Report(m, 3*time.Second)
	for _, want := range []string{
		"# Experiments", "Shape checks", "Table 1", "Table 4",
		"Figure 2", "Figure 3", "vulnerability window", "| id |",
	} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestDomainTableRenders runs a fresh two-ISA subset under all four fault
// domains and checks the register-vs-memory comparison table (the PR's
// acceptance artefact) renders one row per ISA per domain, wired through
// Report.
func TestDomainTableRenders(t *testing.T) {
	cfg := Config{Faults: 2, Seed: 5, Domains: fault.Models()}
	m, err := RunSubset(cfg, func(sc npb.Scenario) bool {
		return sc.App == "IS" && sc.Mode == npb.Serial
	})
	if err != nil {
		t.Fatal(err)
	}
	s := DomainTable(m)
	for _, want := range []string{"armv7", "armv8", "reg", "mem", "imem", "burst", "Masking%"} {
		if !strings.Contains(s, want) {
			t.Errorf("domain table missing %q:\n%s", want, s)
		}
	}
	for _, isaName := range []string{"armv7", "armv8"} {
		if got := strings.Count(s, isaName); got != len(fault.Models()) {
			t.Errorf("domain table has %d %s rows, want %d:\n%s", got, isaName, len(fault.Models()), s)
		}
	}
	// Wiring: the full report includes the table and the cross-domain
	// shape checks evaluated on this matrix.
	r := Report(m, time.Second)
	if !strings.Contains(r, "Domain Table") {
		t.Error("report missing the domain table section")
	}
	for _, id := range []string{"D1", "D2"} {
		if !strings.Contains(r, "| "+id+" |") {
			t.Errorf("report missing cross-domain shape check %s", id)
		}
	}
}

func TestMacroAndVulnRender(t *testing.T) {
	m := smallMatrix(t)
	if s := MacroStats(m); !strings.Contains(s, "MPI V7") {
		t.Errorf("macro stats:\n%s", s)
	}
	if s := VulnWindow(m); !strings.Contains(s, "masking") {
		t.Errorf("vuln window:\n%s", s)
	}
}

func TestPropTableRenders(t *testing.T) {
	cfg := Config{Faults: 8, Seed: 99, TraceProp: true, Domains: []fault.Model{fault.Reg, fault.CacheTag}}
	m, err := RunSubset(cfg, func(sc npb.Scenario) bool {
		return sc.App == "IS" && sc.Mode == npb.Serial && sc.ISA == "armv8"
	})
	if err != nil {
		t.Fatal(err)
	}
	s := PropTable(m)
	for _, want := range []string{"Propagation Table", "traced", "xcore%", "med(inst)", "timing", "kernel"} {
		if !strings.Contains(s, want) {
			t.Errorf("prop table missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "no propagation traces recorded") {
		t.Errorf("traced matrix rendered the empty-table notice:\n%s", s)
	}
	// The report only ships the section when the matrix was traced.
	if r := Report(m, time.Second); !strings.Contains(r, "Propagation Table") {
		t.Error("report missing the propagation table section")
	}
	if r := Report(smallMatrix(t), time.Second); strings.Contains(r, "Propagation Table") {
		t.Error("untraced report grew a propagation table section")
	}
}
