package sens

import (
	"fmt"
	"strings"
)

// DefaultTargetError is the half-width the advisor plans for when the
// caller does not choose one: ±2.5 percentage points at 95% confidence,
// tight enough to separate the paper's cross-ISA masking deltas.
const DefaultTargetError = 0.025

// Text renders the report as the `serfi sens` terminal output: one block
// per populated attribution axis, most-vulnerable cells first, each row
// carrying its sample count, unmasked count, rate and 95% Wilson interval,
// followed by the sample-size advisor. top bounds the rows per table
// (<= 0: all rows).
func (r *Report) Text(top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sensitivity %s domains=%s faults=%d traced=%d unmasked=%d (%.1f%%)\n",
		r.Scenario.ID(), domainList(r), r.Faults, r.Traced,
		r.Total.Unmasked(), 100*rate(r.Total.Unmasked(), r.Faults))
	for _, t := range []*Table{r.Registers, r.Functions, r.Pages, r.Structures} {
		if t.Len() == 0 {
			continue
		}
		b.WriteString("\n")
		writeTable(&b, t, top)
	}
	b.WriteString("\n")
	writeAdvisor(&b, r)
	return b.String()
}

func domainList(r *Report) string {
	names := make([]string, len(r.Domains))
	for i, d := range r.Domains {
		names[i] = d.String()
	}
	if len(names) == 0 {
		return "-"
	}
	return strings.Join(names, ",")
}

func rate(k, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(k) / float64(n)
}

func writeTable(b *strings.Builder, t *Table, top int) {
	fmt.Fprintf(b, "%s vulnerability%*s n  unmasked      rate        95%% CI  escape\n",
		t.Title, 36-len(t.Title)-len(" vulnerability"), "")
	cells := t.Cells()
	shown := cells
	if top > 0 && len(shown) > top {
		shown = shown[:top]
	}
	for _, c := range shown {
		lo, hi := c.CI()
		esc := c.TopEscape()
		if esc == "" {
			esc = "-"
		}
		fmt.Fprintf(b, "  %-28s %6d  %8d  %7.1f%%  %5.1f-%5.1f%%  %s\n",
			c.Key, c.N(), c.Unmasked(), 100*c.Rate(), 100*lo, 100*hi, esc)
	}
	if len(shown) < len(cells) {
		fmt.Fprintf(b, "  ... %d more rows\n", len(cells)-len(shown))
	}
}

// writeAdvisor prints the faults-needed plan: how many injections the
// observed unmasked rate demands for a ±DefaultTargetError interval at
// 95%, alongside the worst-case (p=0.5) budget that is safe before any
// data exists.
func writeAdvisor(b *strings.Builder, r *Report) {
	p := rate(r.Total.Unmasked(), r.Faults)
	lo, hi := Wilson95(r.Total.Unmasked(), r.Faults)
	fmt.Fprintf(b, "advisor: unmasked rate %.1f%% (95%% CI %.1f-%.1f%%) over n=%d\n",
		100*p, 100*lo, 100*hi, r.Faults)
	fmt.Fprintf(b, "advisor: +/-%.1f%% at 95%% needs n=%d at the observed rate (worst case p=0.5: n=%d)\n",
		100*DefaultTargetError, FaultsNeeded(p, DefaultTargetError),
		FaultsNeeded(0.5, DefaultTargetError))
}
