// Package sens is the fault-sensitivity attribution layer: it joins the
// per-fault rows a recorded campaign persists (campaign v4 records — the
// fault.Point tuple, the Cho-style outcome, and the escape class/latency
// when propagation tracing ran) against the golden execution they were
// injected into, and answers *where* a scenario is vulnerable rather than
// merely *how much*. Register-file faults resolve to the architectural
// register struck and, through ACE-like residency windows sampled over the
// deterministic golden run (profile.SampleResidency), to the function that
// was live when the fault landed; instruction-memory faults resolve through
// the image's symbol table; data-memory faults to the mapped region and
// 4 KiB page; cache faults to the (level, structure) metadata array. Every
// cell carries a Wilson confidence interval (stats.go), because the rates
// here come from statistical sampling and the paper's cross-ISA deltas live
// or die on whether the error bars overlap.
//
// The join is reproducible from a database row alone: the scenario ID
// rebuilds the image and the golden summary replays the residency walk, so
// `serfi sens` over yesterday's JSONL file reproduces today's report
// bit for bit.
package sens

import (
	"fmt"
	"sort"

	"serfi/internal/cache"
	"serfi/internal/campaign"
	"serfi/internal/cc"
	"serfi/internal/fault"
	"serfi/internal/fi"
	"serfi/internal/isa"
	"serfi/internal/npb"
	"serfi/internal/profile"
)

// PageSize is the granularity of the per-page memory attribution axis.
const PageSize = 0x1000

// Unattributed is the bucket for coordinates the join cannot name: a
// residency window outside the sampled table, a PC with no covering
// symbol, an address outside every mapped region.
const Unattributed = "(unattributed)"

// Cell is one bucket of an attribution table: the outcome distribution of
// every fault that joined to its key, plus the escape-class histogram of
// the traced subset.
type Cell struct {
	Key     string
	Counts  fi.Counts
	Escapes map[string]int
}

// N is the number of faults attributed to the cell.
func (c *Cell) N() int { return c.Counts.Total() }

// Unmasked is the count of silent corruptions, unexpected terminations and
// hangs — the outcomes a reliability engineer pays for.
func (c *Cell) Unmasked() int { return c.Counts.Unmasked() }

// Rate is the unmasked fraction (0 when the cell is empty).
func (c *Cell) Rate() float64 {
	if n := c.N(); n > 0 {
		return float64(c.Unmasked()) / float64(n)
	}
	return 0
}

// CI is the cell's 95% Wilson interval around Rate.
func (c *Cell) CI() (lo, hi float64) { return Wilson95(c.Unmasked(), c.N()) }

// TopEscape is the dominant escape class among the cell's traced faults
// ("" when none were traced). Ties break alphabetically so reports are
// deterministic.
func (c *Cell) TopEscape() string {
	best, n := "", 0
	for class, k := range c.Escapes {
		if k > n || (k == n && n > 0 && class < best) {
			best, n = class, k
		}
	}
	return best
}

// Table is one attribution axis: cells keyed by register name, function,
// page, or cache structure.
type Table struct {
	Title string
	cells map[string]*Cell
}

// NewTable returns an empty attribution table. Analyze builds the report's
// four axes with it; the exp layer builds its own register-level tables
// from recorded rows.
func NewTable(title string) *Table {
	return &Table{Title: title, cells: make(map[string]*Cell)}
}

// Cell returns the bucket for key, creating it on first use.
func (t *Table) Cell(key string) *Cell {
	c, ok := t.cells[key]
	if !ok {
		c = &Cell{Key: key, Escapes: make(map[string]int)}
		t.cells[key] = c
	}
	return c
}

// Len is the number of populated buckets.
func (t *Table) Len() int { return len(t.cells) }

// Cells returns the buckets most-vulnerable first: by unmasked rate, then
// by sample count, then by key — a deterministic order for reports and
// golden tests.
func (t *Table) Cells() []*Cell {
	out := make([]*Cell, 0, len(t.cells))
	for _, c := range t.cells {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].Rate(), out[j].Rate()
		if ri != rj {
			return ri > rj
		}
		if out[i].N() != out[j].N() {
			return out[i].N() > out[j].N()
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Report is the attribution of one scenario's recorded campaigns across
// every axis the joined domains populate.
type Report struct {
	Scenario npb.Scenario
	Domains  []fault.Model
	Faults   int // per-fault rows attributed
	Traced   int // rows carrying an escape record
	Total    fi.Counts
	// RowsByDomain counts the joined rows per fault domain (the obs layer's
	// serfi_sens_rows_total axis).
	RowsByDomain map[fault.Model]int

	Registers  *Table // register-file and burst faults, by register name
	Functions  *Table // reg/burst via residency windows, imem via symbols
	Pages      *Table // mem/imem faults, by 4 KiB page
	Structures *Table // cache faults, by (level, structure)

	// Joint is the function x register outcome matrix behind the HTML
	// heatmap, populated by register-file and burst faults only (the two
	// domains where both axes are defined).
	Joint map[string]map[string]*Cell
}

// jointCell returns the (function, register) bucket, creating it lazily.
func (r *Report) jointCell(fn, reg string) *Cell {
	row, ok := r.Joint[fn]
	if !ok {
		row = make(map[string]*Cell)
		r.Joint[fn] = row
	}
	c, ok := row[reg]
	if !ok {
		c = &Cell{Key: fn + "/" + reg, Escapes: make(map[string]int)}
		row[reg] = c
	}
	return c
}

// JointAxes returns the sorted function and register axes of the Joint
// matrix, functions most-vulnerable first (by their Functions-table order
// when present, alphabetically otherwise) and registers in index order as
// named (sorted lexically with the numeric registers padded is overkill —
// the register table order is reused instead).
func (r *Report) JointAxes() (funcs, regs []string) {
	seen := make(map[string]bool)
	for _, c := range r.Functions.Cells() {
		if _, ok := r.Joint[c.Key]; ok && !seen[c.Key] {
			funcs = append(funcs, c.Key)
			seen[c.Key] = true
		}
	}
	for fn := range r.Joint {
		if !seen[fn] {
			funcs = append(funcs, fn)
			seen[fn] = true
		}
	}
	for _, c := range r.Registers.Cells() {
		regs = append(regs, c.Key)
	}
	return funcs, regs
}

// Context carries the scenario-derived join machinery: the rebuilt image
// (symbols, mapped regions), the ISA register-file shape, and the
// residency table sampled off the golden run.
type Context struct {
	Scenario npb.Scenario
	Img      *cc.Image
	Feat     isa.Features
	Res      *profile.Residency
}

// NewContext rebuilds the join machinery for one scenario from its golden
// summary — everything a stored campaign row already carries, so reports
// are reproducible from the database alone. windows <= 0 picks
// profile.DefaultResidencyWindows.
func NewContext(sc npb.Scenario, golden campaign.GoldenSummary, windows int) (*Context, error) {
	img, cfg, err := npb.BuildScenario(sc)
	if err != nil {
		return nil, fmt.Errorf("sens: %w", err)
	}
	budget := golden.Cycles*fi.HangFactor + fi.HangSlack
	res, err := profile.SampleResidency(img, cfg, golden.AppStart, golden.AppEnd, budget, windows)
	if err != nil {
		return nil, fmt.Errorf("sens: %w", err)
	}
	return &Context{Scenario: sc, Img: img, Feat: img.Feat, Res: res}, nil
}

// Analyze joins the per-fault rows of one scenario's recorded campaigns
// (one Result per fault domain, all sharing ctx's scenario) against the
// golden run and returns the full attribution report. Results without
// per-run records are rejected — record them with -record-runs.
func Analyze(ctx *Context, results []*campaign.Result) (*Report, error) {
	rep := &Report{
		Scenario:     ctx.Scenario,
		RowsByDomain: make(map[fault.Model]int),
		Registers:    NewTable("per-register"),
		Functions:    NewTable("per-function"),
		Pages:        NewTable("per-page"),
		Structures:   NewTable("per-cache-structure"),
		Joint:        make(map[string]map[string]*Cell),
	}
	for _, r := range results {
		if r.Scenario != ctx.Scenario {
			return nil, fmt.Errorf("sens: result %s does not belong to scenario %s", r.Key(), ctx.Scenario.ID())
		}
		if len(r.Runs) == 0 {
			return nil, fmt.Errorf("sens: %s has no per-run records (record the campaign with -record-runs)", r.Key())
		}
		rep.Domains = append(rep.Domains, r.Domain)
		rep.RowsByDomain[r.Domain] += len(r.Runs)
		for i, run := range r.Runs {
			var escape string
			if i < len(r.Traces) && r.Traces[i] != nil {
				escape = r.Traces[i].Escape.String()
				rep.Traced++
			}
			rep.Faults++
			rep.Total.Add(run.Outcome)
			attribute(ctx, rep, run.Fault, run.Outcome, escape)
		}
	}
	sort.Slice(rep.Domains, func(i, j int) bool { return rep.Domains[i] < rep.Domains[j] })
	return rep, nil
}

// score folds one fault into a cell.
func score(c *Cell, o fi.Outcome, escape string) {
	c.Counts.Add(o)
	if escape != "" {
		c.Escapes[escape]++
	}
}

// attribute joins one fault coordinate to every axis its domain defines.
func attribute(ctx *Context, rep *Report, p fault.Point, o fi.Outcome, escape string) {
	switch p.Domain {
	case fault.Mem:
		score(rep.Pages.Cell(pageKey(ctx.Img, p.Addr)), o, escape)
	case fault.IMem:
		score(rep.Pages.Cell(pageKey(ctx.Img, p.Addr)), o, escape)
		fn := ctx.Img.FuncAt(p.Addr)
		if fn == "" {
			fn = Unattributed
		}
		score(rep.Functions.Cell(fn), o, escape)
	case fault.CacheTag, fault.CacheDirty, fault.CacheRepl:
		kind := "tag"
		switch p.Domain {
		case fault.CacheDirty:
			kind = "status"
		case fault.CacheRepl:
			kind = "lru"
		}
		key := fmt.Sprintf("%s %s", cache.Level(p.Level), kind)
		score(rep.Structures.Cell(key), o, escape)
	default: // fault.Reg, fault.Burst
		reg := fault.RegisterName(ctx.Feat, p.Reg)
		fn := ctx.Res.Func(ctx.Img, p.Index, p.Core)
		if fn == "" {
			fn = Unattributed
		}
		score(rep.Registers.Cell(reg), o, escape)
		score(rep.Functions.Cell(fn), o, escape)
		score(rep.jointCell(fn, reg), o, escape)
	}
}

// pageKey names a data/instruction address's 4 KiB page, annotated with the
// containing mapped region when the image has one.
func pageKey(img *cc.Image, addr uint32) string {
	page := addr &^ (PageSize - 1)
	for _, r := range img.Regions {
		if r.Contains(addr) {
			return fmt.Sprintf("%#08x %s", page, r.Name)
		}
	}
	return fmt.Sprintf("%#08x %s", page, Unattributed)
}
