package sens

import (
	"math"
	"testing"
)

// refWilson is an independent reference implementation: the Wilson interval
// endpoints are the roots of (p - phat)^2 = z^2 p(1-p)/n, solved here with
// the quadratic formula instead of the completed-square form Wilson uses.
// Agreement between the two derivations pins the production formula.
func refWilson(k, n int, z float64) (float64, float64) {
	nn := float64(n)
	phat := float64(k) / nn
	a := 1 + z*z/nn
	b := -(2*phat + z*z/nn)
	c := phat * phat
	d := math.Sqrt(b*b - 4*a*c)
	return (-b - d) / (2 * a), (-b + d) / (2 * a)
}

func TestWilsonMatchesQuadraticReference(t *testing.T) {
	for _, z := range []float64{1.0, 1.645, 1.96, 2.576} {
		for n := 1; n <= 400; n = n*3 + 1 {
			for k := 0; k <= n; k += 1 + n/7 {
				lo, hi := Wilson(k, n, z)
				rlo, rhi := refWilson(k, n, z)
				if math.Abs(lo-rlo) > 1e-12 || math.Abs(hi-rhi) > 1e-12 {
					t.Fatalf("Wilson(%d,%d,%v) = (%v,%v), reference (%v,%v)", k, n, z, lo, hi, rlo, rhi)
				}
			}
		}
	}
}

func TestWilsonKnownValues(t *testing.T) {
	// k=0 has the exact closed form [0, z^2/(n+z^2)].
	lo, hi := Wilson95(0, 10)
	if lo != 0 {
		t.Fatalf("Wilson95(0,10) lo = %v, want 0", lo)
	}
	z2 := Z95 * Z95
	if want := z2 / (10 + z2); math.Abs(hi-want) > 1e-12 {
		t.Fatalf("Wilson95(0,10) hi = %v, want %v", hi, want)
	}
	// k=n mirrors it: [n/(n+z^2), 1].
	lo, hi = Wilson95(10, 10)
	if hi != 1 {
		t.Fatalf("Wilson95(10,10) hi = %v, want 1", hi)
	}
	if want := 10 / (10 + z2); math.Abs(lo-want) > 1e-12 {
		t.Fatalf("Wilson95(10,10) lo = %v, want %v", lo, want)
	}
	// The standard textbook case 3/10 at 95%.
	lo, hi = Wilson95(3, 10)
	if math.Abs(lo-0.1078) > 5e-4 || math.Abs(hi-0.6032) > 5e-4 {
		t.Fatalf("Wilson95(3,10) = (%v,%v), want ~(0.1078,0.6032)", lo, hi)
	}
}

func TestWilsonProperties(t *testing.T) {
	for n := 1; n <= 100; n += 9 {
		for k := 0; k <= n; k++ {
			lo, hi := Wilson95(k, n)
			p := float64(k) / float64(n)
			if lo < 0 || hi > 1 || lo > hi {
				t.Fatalf("Wilson95(%d,%d) = (%v,%v): malformed", k, n, lo, hi)
			}
			if p < lo-1e-12 || p > hi+1e-12 {
				t.Fatalf("Wilson95(%d,%d) = (%v,%v) excludes phat %v", k, n, lo, hi, p)
			}
			// Symmetry: the interval for n-k mirrors around 1/2.
			mlo, mhi := Wilson95(n-k, n)
			if math.Abs(lo-(1-mhi)) > 1e-12 || math.Abs(hi-(1-mlo)) > 1e-12 {
				t.Fatalf("Wilson95(%d,%d) not mirrored by (%d,%d)", k, n, n-k, n)
			}
		}
	}
	if lo, hi := Wilson95(0, 0); lo != 0 || hi != 1 {
		t.Fatalf("Wilson95(0,0) = (%v,%v), want the vacuous (0,1)", lo, hi)
	}
}

func TestFaultsNeeded(t *testing.T) {
	// The classic survey-design numbers: worst case p=0.5.
	if n := FaultsNeeded(0.5, 0.025); n != 1537 {
		t.Fatalf("FaultsNeeded(0.5, 0.025) = %d, want 1537", n)
	}
	if n := FaultsNeeded(0.5, 0.05); n != 385 {
		t.Fatalf("FaultsNeeded(0.5, 0.05) = %d, want 385", n)
	}
	if n := FaultsNeeded(0.1, 0.05); n != 139 {
		t.Fatalf("FaultsNeeded(0.1, 0.05) = %d, want 139", n)
	}
	if n := FaultsNeeded(0, 0.05); n != 0 {
		t.Fatalf("FaultsNeeded(0, 0.05) = %d, want 0 (degenerate rate)", n)
	}
	if n := FaultsNeeded(0.5, 0); n != 0 {
		t.Fatalf("FaultsNeeded(0.5, 0) = %d, want 0 (no target)", n)
	}
}
