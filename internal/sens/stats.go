// The statistical layer of the sensitivity subsystem. Statistical fault
// injection reports rates estimated from finite samples; without error
// bars those rates are noise. Every cell of an attribution table therefore
// carries a Wilson score interval — well-behaved at the extreme rates
// (0%, 100%) and tiny n this workload produces constantly, where the
// naive normal approximation collapses — and reports derive a "faults
// needed" advisor from the same normal quantile, answering the campaign
// designer's actual question: how many more injections buy a ±e interval.
package sens

import "math"

// Z95 is the two-sided 95% normal quantile used by every confidence
// surface in this package.
const Z95 = 1.96

// Wilson returns the Wilson score interval for k successes in n trials at
// normal quantile z. The interval is clamped to [0, 1]; n <= 0 yields the
// vacuous [0, 1] interval (no information).
func Wilson(k, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	nn := float64(n)
	p := float64(k) / nn
	denom := 1 + z*z/nn
	center := p + z*z/(2*nn)
	margin := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn))
	lo = (center - margin) / denom
	hi = (center + margin) / denom
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Wilson95 is Wilson at the package's 95% quantile.
func Wilson95(k, n int) (lo, hi float64) { return Wilson(k, n, Z95) }

// FaultsNeeded returns the number of injections required for a ±e
// half-width normal interval at 95% confidence around an anticipated rate
// p: ceil(z² p(1-p) / e²). Callers pass the observed rate for a refined
// plan or 0.5 for the worst case; e must be positive.
func FaultsNeeded(p, e float64) int {
	if e <= 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return int(math.Ceil(Z95 * Z95 * p * (1 - p) / (e * e)))
}
