package sens

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"serfi/internal/campaign"
	"serfi/internal/fault"
	"serfi/internal/npb"
	"serfi/internal/obs"
)

// recordedCampaigns runs one small recorded+traced campaign matrix over a
// single scenario across four fault domains and returns the scenario and
// the live results.
func recordedCampaigns(t *testing.T, st campaign.Store) (npb.Scenario, []*campaign.Result) {
	t.Helper()
	sc := npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1}
	jobs := []campaign.ScenarioJob{
		{Scenario: sc, Domain: fault.Reg, Seed: 21},
		{Scenario: sc, Domain: fault.IMem, Seed: 21},
		{Scenario: sc, Domain: fault.Mem, Seed: 21},
		{Scenario: sc, Domain: fault.CacheTag, Seed: 21},
	}
	opts := []campaign.Option{
		campaign.Faults(8), campaign.Workers(2),
		campaign.RecordRuns(), campaign.TraceProp(),
	}
	if st != nil {
		opts = append(opts, campaign.WithStore(st))
	}
	results, err := campaign.New(opts...).RunMatrix(context.Background(), jobs)
	if err != nil {
		t.Fatalf("RunMatrix: %v", err)
	}
	return sc, results
}

func TestAnalyzeAttribution(t *testing.T) {
	sc, results := recordedCampaigns(t, nil)
	ctx, err := NewContext(sc, results[0].Golden, 32)
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	rep, err := Analyze(ctx, results)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}

	if want := 4 * 8; rep.Faults != want {
		t.Fatalf("attributed %d rows, want %d", rep.Faults, want)
	}
	if rep.Traced == 0 {
		t.Fatal("no traced rows joined despite TraceProp")
	}
	for _, tb := range []*Table{rep.Registers, rep.Functions, rep.Pages, rep.Structures} {
		if tb.Len() == 0 {
			t.Fatalf("%s table is empty", tb.Title)
		}
	}
	// Every axis accounts for exactly the rows its domains contribute:
	// registers see reg (8), pages see imem+mem (16), structures see
	// cachetag (8), functions see reg+imem (16).
	checkTotal := func(tb *Table, want int) {
		t.Helper()
		n := 0
		for _, c := range tb.Cells() {
			n += c.N()
		}
		if n != want {
			t.Fatalf("%s table folds %d rows, want %d", tb.Title, n, want)
		}
	}
	checkTotal(rep.Registers, 8)
	checkTotal(rep.Pages, 16)
	checkTotal(rep.Structures, 8)
	checkTotal(rep.Functions, 16)
	if got := rep.RowsByDomain[fault.Mem]; got != 8 {
		t.Fatalf("RowsByDomain[mem] = %d, want 8", got)
	}

	// The IS image has real symbols: the function axis must resolve at
	// least one named function, not just the unattributed bucket.
	named := false
	for _, c := range rep.Functions.Cells() {
		if c.Key != Unattributed {
			named = true
		}
	}
	if !named {
		t.Fatal("function table resolved no named function")
	}

	text := rep.Text(0)
	for _, want := range []string{
		"per-register vulnerability", "per-function vulnerability",
		"per-page vulnerability", "per-cache-structure vulnerability",
		"advisor:", "95% CI",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("report text lacks %q:\n%s", want, text)
		}
	}

	page := HTML([]*Report{rep})
	for _, want := range []string{"<!doctype html", "</html>", sc.ID(), "serfi sensitivity heatmap"} {
		if !strings.Contains(page, want) {
			t.Fatalf("HTML lacks %q", want)
		}
	}
}

// TestReportFromDBAloneMatchesLive pins the tentpole reproducibility
// property: analyzing the rows reloaded from the JSONL database — with the
// join context rebuilt from nothing but the stored scenario ID and golden
// summary — renders the same report text as analyzing the live results.
func TestReportFromDBAloneMatchesLive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	st, err := campaign.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	sc, live := recordedCampaigns(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	liveCtx, err := NewContext(sc, live[0].Golden, 0)
	if err != nil {
		t.Fatal(err)
	}
	liveRep, err := Analyze(liveCtx, live)
	if err != nil {
		t.Fatal(err)
	}

	st2, err := campaign.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	reloaded := st2.Query(campaign.Query{HasRuns: true})
	if len(reloaded) != len(live) {
		t.Fatalf("reloaded %d recorded campaigns, want %d", len(reloaded), len(live))
	}
	dbCtx, err := NewContext(reloaded[0].Scenario, reloaded[0].Golden, 0)
	if err != nil {
		t.Fatal(err)
	}
	dbRep, err := Analyze(dbCtx, reloaded)
	if err != nil {
		t.Fatal(err)
	}

	liveText, dbText := liveRep.Text(0), dbRep.Text(0)
	if liveText != dbText {
		t.Fatalf("report from DB diverges from live report:\nlive:\n%s\ndb:\n%s", liveText, dbText)
	}
	if HTML([]*Report{liveRep}) != HTML([]*Report{dbRep}) {
		t.Fatal("HTML heatmap from DB diverges from live heatmap")
	}
}

func TestAnalyzeRejectsUnrecordedResult(t *testing.T) {
	sc := npb.Scenario{App: "IS", Mode: npb.Serial, ISA: "armv8", Cores: 1}
	r := &campaign.Result{Scenario: sc, Domain: fault.Reg}
	ctx := &Context{Scenario: sc}
	if _, err := Analyze(ctx, []*campaign.Result{r}); err == nil {
		t.Fatal("Analyze accepted a result without per-run records")
	}
}

func TestMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	sc, results := recordedCampaigns(t, nil)
	ctx, err := NewContext(sc, results[0].Golden, 16)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(ctx, results)
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(rep, 0.25)
	var b strings.Builder
	reg.WriteText(&b)
	text := b.String()
	for _, fam := range []string{
		"serfi_sens_rows_total", "serfi_sens_traced_rows_total",
		"serfi_sens_cells", "serfi_sens_unmasked_ratio", "serfi_sens_report_seconds",
	} {
		if !strings.Contains(text, fam) {
			t.Fatalf("exposition lacks %s:\n%s", fam, text)
		}
	}
	// The inert-registry path must stay panic-free.
	NewMetrics(nil).Observe(rep, 0.1)
}
