package sens

import (
	"fmt"
	"html"
	"strings"
)

// HTML renders one or more scenario reports as a single self-contained
// vulnerability heatmap page: no external scripts, stylesheets or fonts,
// so the artifact survives alone in a CI bucket or an email. Each scenario
// gets its function x register matrix (cells shaded white-to-red by
// unmasked rate, grey when no fault landed there) plus one strip per
// populated auxiliary axis (pages, cache structures, registers when no
// joint matrix exists).
func HTML(reports []*Report) string {
	var b strings.Builder
	b.WriteString(`<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>serfi sensitivity heatmap</title>
<style>
body { font-family: sans-serif; margin: 2em; background: #fafafa; color: #222; }
h1 { font-size: 1.4em; }
h2 { font-size: 1.1em; margin-top: 2em; }
table.heat { border-collapse: collapse; margin: 0.5em 0 1.5em; }
table.heat th, table.heat td { border: 1px solid #ccc; padding: 3px 7px; font-size: 0.85em; }
table.heat th { background: #eee; font-weight: normal; text-align: left; }
table.heat td.v { text-align: right; font-variant-numeric: tabular-nums; }
table.heat td.empty { background: #e8e8e8; color: #aaa; text-align: center; }
p.legend { font-size: 0.8em; color: #555; }
</style>
</head>
<body>
<h1>serfi sensitivity heatmap</h1>
<p class="legend">cell shade: unmasked-outcome rate (OMM + UT + Hang) from white (0%) to red (100%);
cell text: rate with 95% Wilson interval and sample count; grey: no fault attributed.</p>
`)
	for _, r := range reports {
		writeScenario(&b, r)
	}
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

func writeScenario(b *strings.Builder, r *Report) {
	fmt.Fprintf(b, "<h2>%s &mdash; domains %s, %d faults (%d traced)</h2>\n",
		html.EscapeString(r.Scenario.ID()), html.EscapeString(domainList(r)), r.Faults, r.Traced)
	funcs, regs := r.JointAxes()
	if len(funcs) > 0 && len(regs) > 0 {
		b.WriteString("<table class=\"heat\"><tr><th>function \\ register</th>")
		for _, reg := range regs {
			fmt.Fprintf(b, "<th>%s</th>", html.EscapeString(reg))
		}
		b.WriteString("</tr>\n")
		for _, fn := range funcs {
			fmt.Fprintf(b, "<tr><th>%s</th>", html.EscapeString(fn))
			for _, reg := range regs {
				writeCell(b, r.Joint[fn][reg])
			}
			b.WriteString("</tr>\n")
		}
		b.WriteString("</table>\n")
	}
	for _, t := range []*Table{r.Pages, r.Structures} {
		writeStrip(b, t)
	}
	if len(funcs) == 0 {
		// No joint matrix (no register-file domain recorded): surface the
		// single-axis tables instead so the page is never empty.
		writeStrip(b, r.Registers)
		writeStrip(b, r.Functions)
	}
}

func writeStrip(b *strings.Builder, t *Table) {
	if t.Len() == 0 {
		return
	}
	fmt.Fprintf(b, "<table class=\"heat\"><tr><th>%s</th><th>vulnerability</th></tr>\n",
		html.EscapeString(t.Title))
	for _, c := range t.Cells() {
		fmt.Fprintf(b, "<tr><th>%s</th>", html.EscapeString(c.Key))
		writeCell(b, c)
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>\n")
}

// writeCell emits one shaded heatmap cell. The shade interpolates white to
// red linearly in the unmasked rate; text stays legible because the green
// and blue channels never drop below 96.
func writeCell(b *strings.Builder, c *Cell) {
	if c == nil || c.N() == 0 {
		b.WriteString(`<td class="empty">&middot;</td>`)
		return
	}
	lo, hi := c.CI()
	gb := 255 - int(c.Rate()*159)
	fmt.Fprintf(b, `<td class="v" style="background:rgb(255,%d,%d)" title="%d/%d unmasked">%.0f%% <small>[%.0f-%.0f] n=%d</small></td>`,
		gb, gb, c.Unmasked(), c.N(), 100*c.Rate(), 100*lo, 100*hi, c.N())
}
