// Sensitivity-layer observability: the serfi_sens_* metric families that
// make attribution runs visible on the same exposition as the campaign
// engine and the distributed fabric. A report is a batch artifact, so the
// instruments record per-report aggregates (rows joined, cells populated,
// the headline unmasked ratio, analysis wall time) — never per-fault
// updates.
package sens

import "serfi/internal/obs"

// Metrics is the sensitivity layer's instrument bundle, resolved against a
// registry once per CLI invocation. Registration is idempotent, so
// repeated reports over one registry share families.
type Metrics struct {
	rows     obs.CounterVec // by domain
	traced   obs.Counter
	cells    obs.GaugeVec // by table
	unmasked obs.GaugeVec // by scenario
	seconds  obs.Histogram
}

// NewMetrics registers the serfi_sens_* families on r; nil records into a
// private inert registry so instrumented paths need no enabled-checks.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		r = obs.NewRegistry()
	}
	return &Metrics{
		rows:     r.CounterVec("serfi_sens_rows_total", "Per-fault rows joined by the attribution engine, by fault domain.", "domain"),
		traced:   r.Counter("serfi_sens_traced_rows_total", "Joined rows carrying a propagation escape record."),
		cells:    r.GaugeVec("serfi_sens_cells", "Populated attribution buckets in the latest report, by table.", "table"),
		unmasked: r.GaugeVec("serfi_sens_unmasked_ratio", "Headline unmasked-outcome ratio of the latest report, by scenario.", "scenario"),
		seconds:  r.Histogram("serfi_sens_report_seconds", "Wall time of one scenario attribution (residency walk + join).", obs.ExpBuckets(0.01, 4, 8)),
	}
}

// Observe folds one finished report into the instruments; secs is the
// attribution wall time.
func (m *Metrics) Observe(r *Report, secs float64) {
	for d, n := range r.RowsByDomain {
		m.rows.With(d.String()).Add(float64(n))
	}
	m.traced.Add(float64(r.Traced))
	for name, t := range map[string]*Table{
		"registers": r.Registers, "functions": r.Functions,
		"pages": r.Pages, "structures": r.Structures,
	} {
		m.cells.With(name).Set(float64(t.Len()))
	}
	m.unmasked.With(r.Scenario.ID()).Set(rate(r.Total.Unmasked(), r.Faults))
	m.seconds.Observe(secs)
}
