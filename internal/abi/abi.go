// Package abi fixes the guest ABI shared by the kernel (internal/kos), the
// guest libraries (internal/glib) and host-side tooling: syscall numbers,
// thread limits and process exit conventions.
package abi

// Syscall numbers. The syscall number travels in r12 (armv7) / x8 (armv8);
// arguments in r0-r2; the result returns in r0.
const (
	SysExit         = 1  // exit(code): terminate the application
	SysPutc         = 2  // putc(ch): write one byte to the console
	SysSbrk         = 3  // sbrk(n) -> old break, or 0 when exhausted
	SysThreadCreate = 4  // thread_create(entry, arg) -> tid, or -1
	SysThreadExit   = 5  // thread_exit(): terminate calling thread
	SysThreadJoin   = 6  // thread_join(tid) -> 0 (blocks until zombie)
	SysFutexWait    = 7  // futex_wait(addr, val) -> 0 woken / 1 value changed
	SysFutexWake    = 8  // futex_wake(addr, n) -> number woken
	SysYield        = 9  // yield()
	SysGetTID       = 10 // gettid() -> tid
)

// MaxThreads bounds the kernel thread table (the paper's scenarios need at
// most 1 main + 4 ranks/workers plus slack).
const MaxThreads = 16

// Exit conventions: a faulting application terminates with 128+signal, the
// signal also being reported through the app-exit beacon.
const (
	SigSegv = 11
	SigIll  = 4
	// SigKernel marks a kernel-mode fault (guest kernel panic).
	SigKernel = 9
)

// Thread states in the kernel TCB table.
const (
	ThFree        = 0
	ThReady       = 1
	ThRunning     = 2
	ThBlockedFtx  = 3
	ThBlockedJoin = 4
	ThZombie      = 5
)
