// Package stats renders machine counters in a gem5-style "stats dump" text
// format: one dotted counter name and value per line, grouped by component.
// The dumps feed the same kind of microarchitectural database the paper's
// mining tool ingests (200,000 parameters in the original study).
package stats

import (
	"fmt"
	"io"
	"sort"

	"serfi/internal/mach"
)

// Entry is one named statistic.
type Entry struct {
	Name  string
	Value float64
}

// Collect flattens a machine's counters into gem5-style entries.
func Collect(m *mach.Machine) []Entry {
	var out []Entry
	add := func(name string, v uint64) {
		out = append(out, Entry{name, float64(v)})
	}
	addf := func(name string, v float64) {
		out = append(out, Entry{name, v})
	}
	t := m.TotalStats()
	add("sim.instructions", t.Retired)
	add("sim.kernel_instructions", t.KernelRetired)
	add("sim.max_cycles", m.MaxCycles())
	add("sim.idle_cycles", t.IdleCycles)
	add("sim.branches", t.Branches)
	add("sim.branches_taken", t.BranchTaken)
	add("sim.branch_mispredicts", t.Mispredicts)
	add("sim.cond_skipped", t.CondSkipped)
	add("sim.loads", t.Loads)
	add("sim.stores", t.Stores)
	add("sim.fp_ops", t.FPOps)
	add("sim.calls", t.Calls)
	add("sim.syscalls", t.Svcs)
	add("sim.exceptions", t.Exceptions)
	add("sim.context_restores", t.CtxRestores)
	add("sim.power_transitions", t.WFISleeps)
	for i := range m.Cores {
		s := &m.Cores[i].Stats
		pre := fmt.Sprintf("cpu%d.", i)
		add(pre+"instructions", s.Retired)
		add(pre+"kernel_instructions", s.KernelRetired)
		add(pre+"cycles", s.Cycles)
		add(pre+"idle_cycles", s.IdleCycles)
		add(pre+"branches", s.Branches)
		add(pre+"mispredicts", s.Mispredicts)
		add(pre+"loads", s.Loads)
		add(pre+"stores", s.Stores)
		add(pre+"fp_ops", s.FPOps)
		i1 := m.Hier.L1IStats(i)
		d1 := m.Hier.L1DStats(i)
		add(pre+"icache.hits", i1.Hits)
		add(pre+"icache.misses", i1.Misses)
		addf(pre+"icache.miss_rate", i1.MissRate())
		add(pre+"dcache.hits", d1.Hits)
		add(pre+"dcache.misses", d1.Misses)
		addf(pre+"dcache.miss_rate", d1.MissRate())
	}
	l2 := m.Hier.L2Stats()
	add("l2.hits", l2.Hits)
	add("l2.misses", l2.Misses)
	addf("l2.miss_rate", l2.MissRate())
	add("l2.writebacks", l2.Writeback)
	add("coherence.invalidations", m.Hier.Invalidations)
	return out
}

// Dump writes the entries in sorted gem5 style.
func Dump(w io.Writer, entries []Entry) {
	sorted := append([]Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	fmt.Fprintln(w, "---------- Begin Simulation Statistics ----------")
	for _, e := range sorted {
		if e.Value == float64(uint64(e.Value)) {
			fmt.Fprintf(w, "%-40s %20.0f\n", e.Name, e.Value)
		} else {
			fmt.Fprintf(w, "%-40s %20.6f\n", e.Name, e.Value)
		}
	}
	fmt.Fprintln(w, "---------- End Simulation Statistics   ----------")
}
