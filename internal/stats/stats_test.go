package stats_test

import (
	"bytes"
	"strings"
	"testing"

	"serfi/internal/fi"
	"serfi/internal/npb"
	"serfi/internal/stats"
)

func TestCollectAndDump(t *testing.T) {
	img, cfg, err := npb.BuildScenario(npb.Scenario{App: "EP", Mode: npb.OMP, ISA: "armv8", Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := fi.RunGolden(img, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	entries := stats.Collect(g.Machine)
	byName := map[string]float64{}
	for _, e := range entries {
		byName[e.Name] = e.Value
	}
	if byName["sim.instructions"] == 0 {
		t.Error("no instructions counted")
	}
	if byName["cpu0.instructions"]+byName["cpu1.instructions"] != byName["sim.instructions"] {
		t.Error("per-core instruction counts do not sum to the total")
	}
	if byName["cpu0.dcache.hits"] == 0 {
		t.Error("no dcache activity")
	}
	if byName["sim.syscalls"] == 0 {
		t.Error("no syscalls recorded (kernel invisible?)")
	}
	var buf bytes.Buffer
	stats.Dump(&buf, entries)
	out := buf.String()
	if !strings.Contains(out, "Begin Simulation Statistics") ||
		!strings.Contains(out, "l2.miss_rate") {
		t.Errorf("dump format:\n%s", out[:200])
	}
}
