module serfi

go 1.24
