// Package serfi is a from-scratch Go reproduction of "Extensive Evaluation
// of Programming Models and ISAs Impact on Multicore Soft Error Reliability"
// (DAC 2018): a deterministic multicore full-system simulator with two
// ARM-inspired ISAs, a guest operating system and OpenMP/MPI-like runtimes,
// an NPB-like benchmark suite, a fault-injection framework with pluggable
// fault domains (register, memory, instruction-stream and multi-bit-burst
// fault spaces) and the Cho et al. outcome classification, and a
// cross-layer data-mining layer. See README.md for the architecture tour
// and DESIGN.md for the system inventory and per-experiment index.
package serfi
